"""Table I: execution time breakdown for zipf factors 0.5-1.0.

Regenerates all eight rows (Cbase partition/join, CSH sample+part/NM-join,
Gbase partition/join, GSH partition/all-other) and asserts the breakdown
shape the paper reports.  At ``REPRO_BENCH_SCALE=paper`` the render shows
the paper's own rows side by side.
"""

import pytest

from repro.bench.experiments import run_table1
from repro.bench.paper import TABLE1_THETAS

from conftest import run_once


@pytest.fixture(scope="module")
def table1_rows():
    return run_table1()


def test_table1(benchmark, table1_rows):
    rows = run_once(benchmark, run_table1)
    assert set(rows) == {
        "cbase partition", "cbase join", "csh sample+part", "csh nm-join",
        "gbase partition", "gbase join", "gsh partition", "gsh all other",
    }
    for row in rows.values():
        assert set(row) == set(TABLE1_THETAS)


def test_table1_partition_rows_flat(table1_rows):
    """Cbase and Gbase partition rows barely move across the sweep."""
    for label in ("cbase partition", "gbase partition"):
        row = table1_rows[label]
        assert max(row.values()) < 2.5 * min(row.values())


def test_table1_join_rows_rocket(table1_rows):
    """Cbase join grows by orders of magnitude from 0.5 to 1.0 (paper:
    0.16s -> 7593s); Gbase join likewise (52ms -> 643s)."""
    assert table1_rows["cbase join"][1.0] > 100 * table1_rows["cbase join"][0.5]
    assert table1_rows["gbase join"][1.0] > 100 * table1_rows["gbase join"][0.5]


def test_table1_skew_conscious_rows_beat_baselines_at_high_skew(table1_rows):
    """The rows the paper compares: Cbase join vs CSH sample+part, and
    Gbase join vs GSH all other — both process the skewed tuples."""
    for theta in (0.8, 0.9, 1.0):
        assert (table1_rows["cbase join"][theta]
                > 2 * table1_rows["csh sample+part"][theta])
        assert (table1_rows["gbase join"][theta]
                > 2 * table1_rows["gsh all other"][theta])


def test_table1_csh_nm_join_stays_small(table1_rows):
    """CSH's NM-join never explodes: detection strips the heavy keys, so
    the normal join phase stays orders of magnitude below Cbase's join."""
    assert (table1_rows["csh nm-join"][1.0]
            < 0.01 * table1_rows["cbase join"][1.0])


def test_table1_gsh_partition_grows_modestly(table1_rows):
    """GSH partition grows with skew (5.9ms -> 24.5ms in the paper) but
    stays within a small factor."""
    row = table1_rows["gsh partition"]
    assert row[1.0] > row[0.5]
    assert row[1.0] < 20 * row[0.5]
