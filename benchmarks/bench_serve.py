"""Extension: join-as-a-service cache amortization.

The serving argument in one table: a CLI-per-query architecture pays the
build phase on every query, while the daemon's hot build cache pays it
once per ``(relation_id, version)`` and streams every later probe
against the cached table.  This bench serves a batch of small probe
queries against one large build relation — the serving shape — through
an in-process :class:`~repro.serve.engine.ServeEngine` and compares the
simulated cost against running the one-shot no-partition pipeline once
per query.

At heavy skew (zipf 1.0 on both sides) the exploding join output
dominates both architectures equally, so the bench runs at moderate
skew where the repeated build is the measurable waste.
"""

import pytest

from repro.api import make_join
from repro.data.zipf import ZipfWorkload
from repro.serve.engine import ProbeRequest, ServeEngine

from conftest import run_once

N_R = 1 << 16
N_S = 1 << 12
THETA = 0.5
SEED = 42
QUERIES = 8
#: Small morsels so one probe request parallelizes across the simulated
#: pool the same way cbase-npj's static probe split does.
MORSEL_TUPLES = 64


def serve_batch():
    join_input = ZipfWorkload(N_R, N_S, THETA, seed=SEED).generate()
    direct = make_join("cbase-npj").run(join_input)

    engine = ServeEngine()
    engine.register("bench", join_input.r)
    outcomes = [
        engine.probe_sync(ProbeRequest(relation_id="bench",
                                       probe=join_input.s,
                                       morsel_tuples=MORSEL_TUPLES))
        for _ in range(QUERIES)
    ]
    return {
        "direct": direct,
        "outcomes": outcomes,
        "served_seconds": sum(o.result.simulated_seconds for o in outcomes),
        "direct_seconds": direct.simulated_seconds * QUERIES,
        "build_seconds": outcomes[0].result.phase("build").simulated_seconds,
        "stats": engine.stats(),
    }


@pytest.fixture(scope="module")
def serve_data():
    return serve_batch()


def test_serve_cache_amortizes_builds(benchmark, serve_data):
    data = run_once(benchmark, serve_batch)
    served = data["served_seconds"]
    direct = data["direct_seconds"]
    print(f"\nJoin-as-a-service amortization (|R|={N_R}, |S|={N_S}, "
          f"zipf {THETA}, {QUERIES} queries)")
    print(f"  one-shot x{QUERIES}: {direct:.4g}s simulated")
    print(f"  served   x{QUERIES}: {served:.4g}s simulated "
          f"({direct / served:.2f}x, build paid once: "
          f"{data['build_seconds']:.4g}s)")
    assert served < direct
    assert data["stats"]["cache"]["builds"] == 1
    assert data["stats"]["cache"]["hits"] == QUERIES - 1


def test_served_answers_match_direct(serve_data):
    direct = serve_data["direct"]
    for outcome in serve_data["outcomes"]:
        assert outcome.result.output_count == direct.output_count
        assert outcome.result.output_checksum == direct.output_checksum


def test_warm_probes_skip_the_build_phase(serve_data):
    cold, *warm = serve_data["outcomes"]
    assert [p.name for p in cold.result.phases] == ["build", "probe"]
    for outcome in warm:
        assert [p.name for p in outcome.result.phases] == ["probe"]
        assert outcome.cache_hit
