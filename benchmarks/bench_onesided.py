"""Extension: one-sided skew.

The paper's workload skews both tables identically ("we model highly
skewed cases by using the same interval array and unique key array for
both"), and notes Gbase's sub-list trick "does not handle skewed S
partitions".  This bench separates the sides: R-only skew, S-only skew,
and both — the join output stays modest when only one side is skewed
(heavy keys hit few partners), isolating the data-structure costs from
output explosion.
"""

import numpy as np
import pytest

from repro.analysis.analytic import (
    AnalyticWorkload,
    analytic_cbase,
    analytic_csh,
    analytic_gbase,
    analytic_gsh,
)
from repro.data.zipf import zipf_probabilities
from repro.types import SeedLike, make_rng

from conftest import run_once

N = 1 << 21
THETA = 1.0


def one_sided_workload(skew_r: bool, skew_s: bool,
                       seed: SeedLike = 3) -> AnalyticWorkload:
    """Zipf counts on the selected side(s), uniform on the other(s),
    sharing one key domain so matches exist."""
    rng = make_rng(seed)
    n_keys = N
    zipf_p = zipf_probabilities(n_keys, THETA)
    keys = rng.permutation(n_keys).astype(np.uint32)

    def draw(skewed: bool):
        if skewed:
            return rng.multinomial(N, zipf_p).astype(np.int64)
        return rng.multinomial(
            N, np.full(n_keys, 1.0 / n_keys)).astype(np.int64)

    return AnalyticWorkload(keys, draw(skew_r), draw(skew_s))


def sweep_sides():
    cases = {
        "uniform": one_sided_workload(False, False),
        "r-skew": one_sided_workload(True, False),
        "s-skew": one_sided_workload(False, True),
        "both-skew": one_sided_workload(True, True),
    }
    out = {}
    for label, wl in cases.items():
        out[label] = {
            "output": wl.output_count(),
            "cbase": analytic_cbase(wl).simulated_seconds,
            "csh": analytic_csh(wl).simulated_seconds,
            "gbase": analytic_gbase(wl).simulated_seconds,
            "gsh": analytic_gsh(wl).simulated_seconds,
        }
    return out


@pytest.fixture(scope="module")
def side_data():
    return sweep_sides()


def test_one_sided_skew(benchmark, side_data):
    data = run_once(benchmark, sweep_sides)
    print(f"\nOne-sided skew (n={N}, zipf {THETA})")
    print(f"{'case':<11}{'output':>12}{'cbase':>11}{'csh':>11}"
          f"{'gbase':>11}{'gsh':>11}")
    for label, row in data.items():
        print(f"{label:<11}{row['output']:>12.3e}{row['cbase']:>10.4g}s"
              f"{row['csh']:>10.4g}s{row['gbase']:>10.4g}s"
              f"{row['gsh']:>10.4g}s")
    # Output explodes only when both sides are skewed.
    assert data["both-skew"]["output"] > 20 * data["r-skew"]["output"]
    assert data["both-skew"]["output"] > 20 * data["s-skew"]["output"]


def test_both_sided_skew_is_the_hard_case(side_data):
    """The paper's configuration (both sides skewed) dominates every
    one-sided case for every algorithm."""
    for alg in ("cbase", "csh", "gbase", "gsh"):
        both = side_data["both-skew"][alg]
        assert both >= side_data["r-skew"][alg] * 0.9
        assert both >= side_data["s-skew"][alg] * 0.9


def test_skew_conscious_wins_hardest_case(side_data):
    assert (side_data["both-skew"]["cbase"]
            > 2 * side_data["both-skew"]["csh"])
    assert (side_data["both-skew"]["gbase"]
            > 2 * side_data["both-skew"]["gsh"])


def test_one_sided_costs_stay_near_uniform(side_data):
    """With one side uniform the join output is near-uniform scale, so
    even the baselines stay within a moderate factor of the uniform
    case — the explosion needs *matching* heavy hitters."""
    for alg in ("cbase", "gbase"):
        assert (side_data["r-skew"][alg]
                < 50 * side_data["uniform"][alg])
        assert (side_data["s-skew"][alg]
                < 50 * side_data["uniform"][alg])
