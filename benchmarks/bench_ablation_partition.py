"""Ablation: radix partitioning fanout and pass structure.

The radix join's two-pass design exists to bound per-pass fanout (the
TLB-miss motivation in Boncz/Manegold/Kersten).  This bench maps total
time against pass structure and partition size at low and high skew.
"""

import pytest

from repro.analysis.analytic import analytic_cbase
from repro.bench.runner import get_workload
from repro.cpu.radix_join import CbaseConfig

from conftest import run_once

N = 1 << 21


@pytest.fixture(scope="module")
def workloads():
    return {theta: get_workload(N, theta, seed=13) for theta in (0.0, 0.9)}


def sweep_bits(workloads):
    configs = {
        "1 pass x 10 bits": CbaseConfig(bits_pass1=10, bits_pass2=0),
        "2 pass 5+5 bits": CbaseConfig(bits_pass1=5, bits_pass2=5),
        "2 pass 7+3 bits": CbaseConfig(bits_pass1=7, bits_pass2=3),
        "2 pass 6+6 bits": CbaseConfig(bits_pass1=6, bits_pass2=6),
        "2 pass 8+8 bits": CbaseConfig(bits_pass1=8, bits_pass2=8),
    }
    out = {}
    for label, config in configs.items():
        out[label] = {theta: analytic_cbase(wl, config)
                      for theta, wl in workloads.items()}
    return out


def test_ablation_partition_bits(benchmark, workloads):
    results = run_once(benchmark, sweep_bits, workloads)
    print(f"\nCbase partitioning ablation (n={N})")
    print(f"{'config':<18}{'zipf 0.0':>12}{'zipf 0.9':>12}")
    for label, by_theta in results.items():
        print(f"{label:<18}"
              f"{by_theta[0.0].simulated_seconds:>11.4g}s"
              f"{by_theta[0.9].simulated_seconds:>11.4g}s")
    # Same fanout split across passes must agree on output.
    outputs = {res[0.9].output_count for res in results.values()}
    assert len(outputs) == 1
    # The join phase depends only on the final fanout, not on how the
    # bits were split across passes (task order — and hence the greedy
    # schedule — differs slightly, so compare with a small tolerance).
    for label in ("2 pass 5+5 bits", "2 pass 7+3 bits"):
        assert (results[label][0.0].phase("join").simulated_seconds
                == pytest.approx(
                    results["1 pass x 10 bits"][0.0]
                    .phase("join").simulated_seconds, rel=0.05))
    # A second pass costs a second copy of the data.
    one = results["1 pass x 10 bits"][0.0].phase("partition")
    two = results["2 pass 5+5 bits"][0.0].phase("partition")
    assert two.counters.tuple_moves == 2 * one.counters.tuple_moves
    # At high skew, no fanout rescues the baseline: the dominant-key task
    # is invariant (same-key tuples cannot be split by radix bits).
    joins = [res[0.9].phase("join").simulated_seconds
             for res in results.values()]
    assert max(joins) < 1.6 * min(joins)


def test_fanout_does_not_change_partition_cost_shape(workloads):
    """Partition-phase cost scales with passes, not with skew."""
    config = CbaseConfig(bits_pass1=6, bits_pass2=6)
    lo = analytic_cbase(workloads[0.0], config)
    hi = analytic_cbase(workloads[0.9], config)
    assert (hi.phase("partition").simulated_seconds
            < 2.5 * lo.phase("partition").simulated_seconds)
