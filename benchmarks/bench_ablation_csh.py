"""Ablations for CSH's design knobs: sample rate and skew threshold.

The paper fixes these by hand ("e.g., 1%", "e.g., 2"); these benches map
the sensitivity around those choices at a fixed high-skew point.
"""

import pytest

from repro.analysis.analytic import analytic_cbase, analytic_csh
from repro.bench.runner import get_workload
from repro.core.csh.pipeline import CSHConfig

from conftest import run_once

N = 1 << 21
THETA = 0.9


@pytest.fixture(scope="module")
def workload():
    return get_workload(N, THETA, seed=13)


@pytest.fixture(scope="module")
def cbase_seconds(workload):
    return analytic_cbase(workload).simulated_seconds


def sweep_sample_rate(workload):
    out = {}
    for rate in (0.001, 0.005, 0.01, 0.05, 0.1):
        res = analytic_csh(workload, CSHConfig(sample_rate=rate))
        out[rate] = res
    return out


def sweep_threshold(workload):
    out = {}
    for threshold in (1, 2, 3, 4, 8):
        res = analytic_csh(workload, CSHConfig(freq_threshold=threshold))
        out[threshold] = res
    return out


def test_ablation_sample_rate(benchmark, workload, cbase_seconds):
    results = run_once(benchmark, sweep_sample_rate, workload)
    print(f"\nCSH sample-rate ablation (n={N}, zipf={THETA}, "
          f"cbase={cbase_seconds:.3g}s)")
    print(f"{'rate':>8}{'seconds':>11}{'skew keys':>11}{'speedup':>9}")
    for rate, res in results.items():
        print(f"{rate:>8}{res.simulated_seconds:>10.4g}s"
              f"{res.meta['skewed_keys']:>11}"
              f"{cbase_seconds / res.simulated_seconds:>8.1f}x")
    # Larger samples detect at least as many skewed keys.
    keys = [res.meta["skewed_keys"] for res in results.values()]
    assert keys == sorted(keys)
    # Every setting beats the baseline at this skew level.
    for res in results.values():
        assert res.simulated_seconds < cbase_seconds


def test_ablation_threshold(benchmark, workload, cbase_seconds):
    results = run_once(benchmark, sweep_threshold, workload)
    print(f"\nCSH threshold ablation (n={N}, zipf={THETA})")
    print(f"{'threshold':>10}{'seconds':>11}{'skew keys':>11}")
    for threshold, res in results.items():
        print(f"{threshold:>10}{res.simulated_seconds:>10.4g}s"
              f"{res.meta['skewed_keys']:>11}")
    # Raising the threshold shrinks the detected key set.
    keys = [res.meta["skewed_keys"] for res in results.values()]
    assert keys == sorted(keys, reverse=True)
    # The paper's default (2) must beat the baseline.
    assert results[2].simulated_seconds < cbase_seconds


def test_all_settings_keep_output_exact(workload):
    expected = workload.output_count()
    for rate in (0.001, 0.1):
        res = analytic_csh(workload, CSHConfig(sample_rate=rate))
        assert res.output_count == expected
