#!/usr/bin/env python
"""GPU what-if analysis on the SIMT cost simulator.

Explores the GSH design space the paper fixes by hand: the top-k skewed
keys per large partition, the large-partition threshold, and the device
itself (the paper's A100 vs a smaller V100-class part).  All runs join the
same skewed tables, so the outputs must agree while the simulated times
shift with the configuration.

Run:  python examples/gpu_tuning.py [n_tuples] [zipf_factor]
"""

import sys

from repro import GSHConfig, GSHJoin, GbaseConfig, GbaseJoin, ZipfWorkload
from repro.gpu.device import A100, V100_LIKE


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 17
    theta = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0

    join_input = ZipfWorkload(n, n, theta=theta, seed=3).generate()
    print(f"{n} tuples per table, zipf {theta}\n")

    baseline = GbaseJoin(GbaseConfig(device=A100)).run(join_input)
    print(f"gbase on {A100.name}: {baseline.simulated_seconds:.4g}s "
          f"({baseline.meta['join_blocks']} join blocks)\n")

    print("GSH: top-k sensitivity (keys stripped per large partition)")
    print(f"{'top_k':>6}{'simulated':>12}{'skew keys':>11}{'speedup':>9}")
    reference = None
    for top_k in (1, 2, 3, 5, 8):
        result = GSHJoin(GSHConfig(device=A100, top_k=top_k)).run(join_input)
        if reference is None:
            reference = result
        assert result.output_count == baseline.output_count
        keys = len(result.meta["skewed_keys"])
        print(f"{top_k:>6}{result.simulated_seconds:>11.4g}s{keys:>11}"
              f"{baseline.simulated_seconds / result.simulated_seconds:>8.1f}x")

    print("\nGSH: large-partition threshold sensitivity")
    print(f"{'factor':>7}{'simulated':>12}{'large parts':>13}")
    for factor in (0.5, 1.0, 2.0, 4.0):
        result = GSHJoin(GSHConfig(device=A100,
                                   large_partition_factor=factor)
                         ).run(join_input)
        assert result.output_count == baseline.output_count
        print(f"{factor:>7}{result.simulated_seconds:>11.4g}s"
              f"{result.meta['large_partitions']:>13}")

    print("\nDevice comparison (same workload, same algorithm)")
    for device in (A100, V100_LIKE):
        gbase = GbaseJoin(GbaseConfig(device=device)).run(join_input)
        gsh = GSHJoin(GSHConfig(device=device)).run(join_input)
        assert gsh.output_count == gbase.output_count
        print(f"  {device.name:<16} gbase {gbase.simulated_seconds:>9.4g}s   "
              f"gsh {gsh.simulated_seconds:>9.4g}s   "
              f"speedup {gbase.simulated_seconds / gsh.simulated_seconds:.1f}x")


if __name__ == "__main__":
    main()
