#!/usr/bin/env python
"""Volcano query: which vertices carry the most 2-hop traffic?

The paper's experimental setup assumes the join output is "consumed by an
upper level query operator".  This example builds that full pipeline with
the query layer: scan a power-law edge table twice, hash-join on the
middle vertex (the skewed key column), aggregate path counts per middle
vertex, and report the top hubs — all streaming, batch by batch, with the
skew-aware join keeping output batches bounded even at hub vertices.

Run:  python examples/volcano_hub_query.py [n_vertices] [n_edges]
"""

import sys

import numpy as np

from repro.data import power_law_graph
from repro.query import GroupByAggregate, HashJoin, TableScan, TopK


def main() -> None:
    n_vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 20000
    n_edges = int(sys.argv[2]) if len(sys.argv) > 2 else 150000

    print(f"power-law graph: {n_vertices} vertices, {n_edges} edges")
    graph = power_law_graph(n_vertices, n_edges, exponent=2.0, seed=11)

    # SELECT mid, count(*) AS paths
    # FROM edges e1 JOIN edges e2 ON e1.dst = e2.src
    # GROUP BY mid ORDER BY paths DESC LIMIT 10
    incoming = TableScan({"mid": graph.dst, "src": graph.src},
                         batch_size=32768)
    outgoing = TableScan({"mid": graph.src, "dst": graph.dst})
    join = HashJoin(incoming, outgoing, "mid", "mid",
                    skew_aware=True, sample_rate=0.02)
    paths_per_mid = GroupByAggregate(join, key="mid",
                                     aggs={"paths": ("count", None)})
    top = TopK(paths_per_mid, by="paths", k=10)

    result = top.collect()

    # Ground truth: paths through v = in_degree(v) * out_degree(v).
    indeg = graph.in_degrees().astype(np.int64)
    outdeg = graph.out_degrees().astype(np.int64)
    truth = indeg * outdeg

    print(f"\n{'vertex':>8}{'2-hop paths':>13}{'in*out (truth)':>16}")
    print("-" * 37)
    for mid, paths in zip(result.column("mid").tolist(),
                          result.column("paths").tolist()):
        print(f"{mid:>8}{paths:>13}{int(truth[mid]):>16}")
        assert paths == truth[mid], "query layer disagrees with closed form"

    total = int(truth.sum())
    top_share = sum(result.column("paths").tolist()) / max(total, 1)
    print(f"\ntotal 2-hop paths: {total}")
    print(f"top-10 hub vertices carry {top_share:.1%} of all paths — "
          "the skew the paper's joins must survive")


if __name__ == "__main__":
    main()
