#!/usr/bin/env python
"""Sales analytics: skewed PK-FK joins through the full stack.

Generates a star schema where a few big accounts place most orders (the
sales-world equivalent of graph hubs), then answers two questions:

1. Which regions earn the most revenue?  (query layer: orders ⋈ customers
   grouped by region)
2. How much faster is the skew-conscious join on this schema?  (the CSH /
   Cbase and GSH / Gbase pipelines on the same join input)

Run:  python examples/sales_analytics.py [n_customers] [n_orders]
"""

import sys

from repro import CSHJoin, CbaseJoin, GSHJoin, GbaseJoin
from repro.cpu.stats import heavy_key_share
from repro.data.sales import generate_sales
from repro.query import GroupByAggregate, HashJoin, TableScan, TopK


def main() -> None:
    n_customers = int(sys.argv[1]) if len(sys.argv) > 1 else 20000
    n_orders = int(sys.argv[2]) if len(sys.argv) > 2 else 400000

    sales = generate_sales(n_customers=n_customers, n_orders=n_orders,
                           n_line_items=2 * n_orders, seed=13)
    share = heavy_key_share(sales.orders.keys, top_k=10)
    print(f"{n_customers} customers, {n_orders} orders; the top-10 "
          f"accounts place {share:.1%} of all orders\n")

    # SELECT region, count(*), sum(value) FROM orders JOIN customers
    # ON orders.customer = customers.id GROUP BY region
    # ORDER BY revenue DESC LIMIT 5
    orders = TableScan({"customer": sales.orders.keys,
                        "value": sales.orders.payloads}, batch_size=65536)
    customers = TableScan({"customer": sales.customers.keys,
                           "region": sales.customers.payloads})
    joined = HashJoin(orders, customers, "customer", "customer",
                      skew_aware=True)
    by_region = GroupByAggregate(joined, key="region", aggs={
        "orders": ("count", None),
        "revenue": ("sum", "value"),
    })
    top = TopK(by_region, by="revenue", k=5).collect()

    print(f"{'region':>7}{'orders':>10}{'revenue':>14}")
    print("-" * 31)
    for region, n, revenue in zip(top.column("region").tolist(),
                                  top.column("orders").tolist(),
                                  top.column("revenue").tolist()):
        print(f"{region:>7}{n:>10}{revenue:>14,}")

    join_input = sales.orders_with_customers()
    cbase = CbaseJoin().run(join_input)
    csh = CSHJoin().run(join_input)
    gbase = GbaseJoin().run(join_input)
    gsh = GSHJoin().run(join_input)
    assert csh.matches(cbase) and gsh.matches(gbase)
    print(f"\norders ⋈ customers output: {cbase.output_count} rows")
    print(f"CSH vs Cbase: {cbase.simulated_seconds / csh.simulated_seconds:.2f}x   "
          f"GSH vs Gbase: {gbase.simulated_seconds / gsh.simulated_seconds:.2f}x")
    print("(PK-FK joins bound each probe to one match, so wins here stay "
          "moderate —")
    print(" the explosive case needs heavy hitters on both sides, as in "
          "the paper's workload.)")


if __name__ == "__main__":
    main()
