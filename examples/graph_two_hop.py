#!/usr/bin/env python
"""Graph analytics: counting 2-hop paths in a power-law graph.

The paper's motivating scenario (Section I): vertex degrees of real-world
graphs follow power laws, so joins over edge tables see heavily skewed
keys.  This example generates a power-law graph, self-joins its edge table
(R.dst = S.src enumerates paths a -> b -> c), and shows how the
skew-conscious joins treat the hub vertices.

Run:  python examples/graph_two_hop.py [n_vertices] [n_edges]
"""

import sys

import numpy as np

from repro import CSHConfig, CSHJoin, CbaseJoin, GSHJoin, GbaseJoin
from repro.data import count_two_hop_paths, power_law_graph, two_hop_join_input


def main() -> None:
    n_vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 20000
    n_edges = int(sys.argv[2]) if len(sys.argv) > 2 else 200000

    print(f"Generating power-law graph: {n_vertices} vertices, "
          f"{n_edges} edges ...")
    graph = power_law_graph(n_vertices, n_edges, exponent=2.0, seed=7)
    degrees = graph.in_degrees()
    top = np.sort(degrees)[::-1][:5]
    print(f"hottest in-degrees: {top.tolist()} "
          f"(median {int(np.median(degrees[degrees > 0]))}) — "
          "hub vertices make the join keys skewed\n")

    join_input = two_hop_join_input(graph)
    expected = count_two_hop_paths(graph)

    cbase = CbaseJoin().run(join_input)
    csh = CSHJoin(CSHConfig(sample_rate=0.02)).run(join_input)
    gbase = GbaseJoin().run(join_input)
    gsh = GSHJoin().run(join_input)

    for result in (cbase, csh, gbase, gsh):
        assert result.output_count == expected, result.algorithm
    print(f"2-hop paths: {expected} (all algorithms agree with the "
          "closed-form count)\n")

    print(f"{'algorithm':<8}{'simulated':>12}")
    print("-" * 22)
    for result in (cbase, csh, gbase, gsh):
        print(f"{result.algorithm:<8}{result.simulated_seconds:>11.4g}s")

    hubs = csh.meta["skewed_keys"]
    covered = csh.meta["skewed_output"]
    print(f"\nCSH detected {hubs} hub vertices; their paths account for "
          f"{covered / max(expected, 1):.1%} of the output")
    print(f"CSH speedup over Cbase: "
          f"{cbase.simulated_seconds / csh.simulated_seconds:.2f}x; "
          f"GSH over Gbase: "
          f"{gbase.simulated_seconds / gsh.simulated_seconds:.2f}x")


if __name__ == "__main__":
    main()
