#!/usr/bin/env python
"""Quickstart: join two skewed tables with every algorithm in the library.

Generates the paper's workload (zipf-distributed 4-byte keys, shared
interval/key arrays for R and S), runs all five join pipelines, verifies
that they produce identical output, and prints the per-phase breakdowns.

Run:  python examples/quickstart.py [n_tuples] [zipf_factor]
"""

import sys

from repro import ZipfWorkload, run_all
from repro.analysis import verify_all


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 17
    theta = float(sys.argv[2]) if len(sys.argv) > 2 else 0.9

    print(f"Generating two tables of {n} tuples, zipf factor {theta} ...")
    workload = ZipfWorkload(n_r=n, n_s=n, theta=theta, seed=42)
    join_input = workload.generate()

    print("Running cbase, cbase-npj, csh, gbase, gsh ...\n")
    results = run_all(join_input)

    # Every pipeline must agree with the histogram ground truth.
    verify_all(results.values(), join_input)

    count = results["csh"].output_count
    print(f"join output: {count} tuples  (all five algorithms agree)\n")
    header = f"{'algorithm':<12}{'simulated':>12}   phase breakdown"
    print(header)
    print("-" * 72)
    for name, result in results.items():
        phases = ", ".join(
            f"{p.name}={p.simulated_seconds:.4g}s" for p in result.phases
        )
        print(f"{name:<12}{result.simulated_seconds:>11.4g}s   {phases}")

    cbase = results["cbase"].simulated_seconds
    csh = results["csh"].simulated_seconds
    gbase = results["gbase"].simulated_seconds
    gsh = results["gsh"].simulated_seconds
    print(f"\nCSH speedup over Cbase: {cbase / csh:.2f}x")
    print(f"GSH speedup over Gbase: {gbase / gsh:.2f}x")
    print("\n(Simulated seconds come from exact operation counters priced "
          "by the calibrated cost models; see DESIGN.md.)")


if __name__ == "__main__":
    main()
