#!/usr/bin/env python
"""Skew sweep: reproduce the shape of the paper's Figure 4 interactively.

Runs the full algorithm suite across a range of zipf factors — with real
executors at a small scale, and with the analytic paper-scale path at any
scale you ask for — and prints Figure-4-style series plus the speedup
summary.

Run:  python examples/skew_sweep.py [n_tuples] [--analytic]
"""

import sys

from repro import ZipfWorkload, run_all
from repro.analysis import AnalyticWorkload, analytic_run
from repro.analysis.speedup import SweepPoint, max_speedup
from repro.bench.tables import render_series

THETAS = (0.0, 0.25, 0.5, 0.75, 1.0)
ALGORITHMS = ("cbase", "cbase-npj", "csh", "gbase", "gsh")


def sweep_real(n: int):
    series = {alg: {} for alg in ALGORITHMS}
    for theta in THETAS:
        join_input = ZipfWorkload(n, n, theta=theta, seed=1).generate()
        results = run_all(join_input)
        counts = {r.output_count for r in results.values()}
        assert len(counts) == 1, "algorithms disagreed!"
        for alg, result in results.items():
            series[alg][theta] = result.simulated_seconds
    return series


def sweep_analytic(n: int):
    series = {alg: {} for alg in ALGORITHMS}
    for theta in THETAS:
        wl = AnalyticWorkload.from_zipf(n, n, theta, seed=1)
        for alg in ALGORITHMS:
            series[alg][theta] = analytic_run(alg, wl).simulated_seconds
    return series


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    analytic = "--analytic" in sys.argv
    n = int(args[0]) if args else (1 << 20 if analytic else 1 << 16)

    mode = "analytic (histogram-driven)" if analytic else "real executors"
    print(f"Sweeping zipf factors {THETAS} at {n} tuples per table "
          f"[{mode}] ...\n")
    series = sweep_analytic(n) if analytic else sweep_real(n)

    print(render_series({k: series[k] for k in ("cbase", "cbase-npj", "csh")},
                        THETAS, "CPU hash joins (cf. Figure 4a)"))
    print()
    print(render_series({k: series[k] for k in ("gbase", "gsh")},
                        THETAS, "GPU hash joins (cf. Figure 4b)"))

    points = [SweepPoint(t, {alg: series[alg][t] for alg in ALGORITHMS})
              for t in THETAS]
    cpu = max_speedup(points, "cbase", "csh", parameter_range=(0.5, 1.0))
    gpu = max_speedup(points, "gbase", "gsh", parameter_range=(0.5, 1.0))
    print(f"\nmax CSH speedup over Cbase (zipf 0.5-1.0): {cpu[1]:.1f}x "
          f"at zipf={cpu[0]}")
    print(f"max GSH speedup over Gbase (zipf 0.5-1.0): {gpu[1]:.1f}x "
          f"at zipf={gpu[0]}")
    print("\n(paper, 32M tuples: up to 8.0x CPU and 13.5x GPU; "
          "run with --analytic and a larger n to approach those factors)")


if __name__ == "__main__":
    main()
