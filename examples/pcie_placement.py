#!/usr/bin/env python
"""Data-placement what-if: GPU-resident vs shipped-over-PCIe joins.

The paper joins GPU-resident data, noting that host-device transfer "can
be substantial".  This example quantifies that choice with the transfer
model: for each skew level, compare the CPU joins against GPU joins that
must first ship both tables over PCIe 4.0 (and, for contrast, NVLink).

Run:  python examples/pcie_placement.py [n_tuples]
"""

import sys

from repro import CSHJoin, CbaseJoin, GSHJoin, ZipfWorkload
from repro.gpu.transfer import NVLINK3, PCIE4_X16, with_transfer


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 17

    print(f"{n} tuples per table; GPU joins pay for shipping both tables\n")
    header = (f"{'zipf':>5}{'csh (cpu)':>12}{'gsh resident':>14}"
              f"{'gsh + pcie':>12}{'gsh + nvlink':>14}{'best':>14}")
    print(header)
    print("-" * len(header))
    for theta in (0.0, 0.5, 0.75, 1.0):
        join_input = ZipfWorkload(n, n, theta=theta, seed=5).generate()
        csh = CSHJoin().run(join_input)
        gsh = GSHJoin().run(join_input)
        assert csh.output_count == gsh.output_count
        pcie = with_transfer(gsh, PCIE4_X16)
        nvlink = with_transfer(gsh, NVLINK3)
        options = {
            "csh (cpu)": csh.simulated_seconds,
            "gsh resident": gsh.simulated_seconds,
            "gsh + pcie": pcie.simulated_seconds,
            "gsh + nvlink": nvlink.simulated_seconds,
        }
        best = min(options, key=options.get)
        print(f"{theta:>5}"
              f"{csh.simulated_seconds:>11.4g}s"
              f"{gsh.simulated_seconds:>13.4g}s"
              f"{pcie.simulated_seconds:>11.4g}s"
              f"{nvlink.simulated_seconds:>13.4g}s"
              f"{best:>14}")

    print("\nShipping cost scales with the table size while join cost "
          "scales with skew, so the")
    print("winner flips with both knobs — rerun with a larger n to watch "
          "the PCIe column matter")
    print("and the GPU's skew advantage grow (the paper-scale partition "
          "fanout needs ~1M+ tuples).")


if __name__ == "__main__":
    main()
