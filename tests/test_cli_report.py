"""Tests for the CLI, the report formatter, and the adaptive join."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.adaptive import AdaptiveConfig, AdaptiveJoin
from repro.core.csh import CSHConfig
from repro.cpu import CbaseJoin
from repro.cpu.stats import (
    heavy_key_share,
    min_achievable_partition_size,
    partition_stats,
    skew_report,
)
from repro.cpu.hashing import hash_keys
from repro.cpu.partition import partition_pass
from repro.data.generators import constant_key_input, uniform_input
from repro.data.zipf import ZipfWorkload
from repro.exec.report import comparison_report, result_report
from tests.conftest import assert_result_correct


class TestCLI:
    def test_run_single(self, capsys):
        assert main(["run", "-n", "4000", "-t", "0.8", "-a", "csh"]) == 0
        out = capsys.readouterr().out
        assert "algorithm:      csh" in out
        assert "phases:" in out

    def test_run_all_verifies(self, capsys):
        assert main(["run", "-n", "3000", "--all"]) == 0
        out = capsys.readouterr().out
        assert "outputs agree" in out
        for name in ("cbase", "cbase-npj", "csh", "gbase", "gsh"):
            assert name in out

    def test_run_counters(self, capsys):
        assert main(["run", "-n", "2000", "--counters"]) == 0
        assert "operation counters:" in capsys.readouterr().out

    def test_run_analytic(self, capsys):
        assert main(["run", "-n", "50000", "-t", "1.0", "--analytic",
                     "--all"]) == 0
        assert "outputs agree" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "-n", "2000", "--thetas", "0,1.0"]) == 0
        out = capsys.readouterr().out
        assert "zipf sweep" in out
        assert "csh" in out

    def test_sweep_analytic(self, capsys):
        assert main(["sweep", "-n", "20000", "--analytic",
                     "--thetas", "0.5"]) == 0
        assert "zipf sweep" in capsys.readouterr().out

    def test_bench_detection(self, capsys):
        import repro.bench.runner as runner
        old = runner.bench_tuples
        runner.bench_tuples = lambda: 1 << 16
        try:
            assert main(["bench", "detection"]) == 0
        finally:
            runner.bench_tuples = old
        assert "detected skewed keys" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestReport:
    def test_result_report_contents(self):
        ji = uniform_input(2000, 2000, seed=1)
        res = CbaseJoin().run(ji)
        text = result_report(res, counters=True)
        assert "cbase" in text
        assert "partition" in text and "join" in text
        assert "hash_ops" in text
        assert f"{res.output_count:,}" in text

    def test_comparison_report_flags_disagreement(self):
        ji = uniform_input(1000, 1000, seed=2)
        a = CbaseJoin().run(ji)
        b = CbaseJoin().run(ji)
        assert "outputs agree" in comparison_report([a, b])
        b.output_count += 1
        assert "DISAGREE" in comparison_report([a, b])

    def test_comparison_report_empty(self):
        assert comparison_report([]) == "(no results)"


class TestAdaptive:
    def test_low_skew_dispatches_to_cbase(self):
        rng_keys = np.random.default_rng(0).permutation(
            np.arange(20000)).astype(np.uint32)
        from repro.data.relation import JoinInput, Relation
        ji = JoinInput(
            r=Relation.from_keys(rng_keys, seed=1, name="R"),
            s=Relation.from_keys(rng_keys[::-1].copy(), seed=2, name="S"),
        )
        cfg = AdaptiveConfig(csh=CSHConfig(sample_rate=0.005),
                             min_skewed_keys=3)
        res = AdaptiveJoin(cfg).run(ji)
        assert res.meta["chosen"] == "cbase"
        assert res.phases[0].name == "probe-sample"
        assert_result_correct(res, ji)

    def test_high_skew_dispatches_to_csh(self):
        ji = ZipfWorkload(20000, 20000, theta=1.0, seed=3).generate()
        res = AdaptiveJoin().run(ji)
        assert res.meta["chosen"] == "csh"
        assert "nm-join" in [p.name for p in res.phases]
        assert_result_correct(res, ji)

    def test_sample_phase_counted_once(self):
        ji = ZipfWorkload(10000, 10000, theta=1.0, seed=4).generate()
        res = AdaptiveJoin().run(ji)
        names = [p.name for p in res.phases]
        assert names.count("probe-sample") == 1
        assert "sample" not in names


class TestStats:
    def test_partition_stats_balanced_and_skewed(self):
        uni = uniform_input(8000, 1, seed=1)
        pr = partition_pass(uni.r.keys, uni.r.payloads,
                            hash_keys(uni.r.keys), 0, 3, 2).partitioned
        stats = partition_stats(pr)
        assert stats.fanout == 8
        assert stats.n_tuples == 8000
        assert stats.imbalance < 1.5

        skew = constant_key_input(8000, 1, seed=1)
        ps = partition_pass(skew.r.keys, skew.r.payloads,
                            hash_keys(skew.r.keys), 0, 3, 2).partitioned
        stats = partition_stats(ps)
        assert stats.imbalance == pytest.approx(8.0)
        assert stats.occupancy == pytest.approx(1 / 8)

    def test_heavy_key_share(self):
        keys = np.array([1] * 90 + list(range(2, 12)), dtype=np.uint32)
        assert heavy_key_share(keys, 1) == pytest.approx(0.9)
        assert heavy_key_share(np.empty(0, np.uint32)) == 0.0

    def test_min_achievable_partition_size(self):
        keys = np.array([5] * 70 + [1, 2, 3], dtype=np.uint32)
        assert min_achievable_partition_size(keys) == 70
        assert min_achievable_partition_size(np.empty(0, np.uint32)) == 0

    def test_skew_report(self):
        keys = np.array([9] * 50 + [1, 2], dtype=np.uint32)
        text = skew_report(keys, top_k=2)
        assert "52 tuples" in text
        assert "key 9: 50 tuples" in text
        assert skew_report(np.empty(0, np.uint32)) == "empty key column"
