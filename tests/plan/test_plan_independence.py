"""Property: planning never changes answers.

For any input the planner may see, executing its pick must be
bit-identical to running the same (algorithm, backend, workers)
configuration forced by hand through the environment — the way a user
would with ``REPRO_BACKEND`` / ``REPRO_WORKERS``.  That includes runs
with injected faults: the same seeded fault plan must produce the same
recovery (or the same typed error) on both paths.

``REPRO_HYPOTHESIS_PROFILE=nightly`` deepens the search, matching the
backend property tests.
"""

import os
from contextlib import contextmanager

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import make_join
from repro.data.zipf import ZipfWorkload
from repro.errors import ReproError
from repro.exec.backend import BACKEND_ENV, BACKENDS, PARALLEL, parallel_status
from repro.exec.differential import compare_results
from repro.faults.plan import seeded_plan
from repro.faults.scope import activate_plan
from repro.plan import Constraints, CorrectionStore, Planner

_NIGHTLY = os.environ.get("REPRO_HYPOTHESIS_PROFILE", "") == "nightly"

_SETTINGS = settings(
    max_examples=25 if _NIGHTLY else 6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@contextmanager
def _forced_env(point):
    """Force one execution point the way a user would: via env vars.

    This is deliberately NOT the planner's own ``use_backend`` /
    ``pinned_workers`` path — the property is that both routes land on
    identical code, so the reference must go through the environment.
    """
    from repro.exec import parallel

    saved = {
        BACKEND_ENV: os.environ.get(BACKEND_ENV),
        parallel.WORKERS_ENV: os.environ.get(parallel.WORKERS_ENV),
    }
    os.environ[BACKEND_ENV] = point.backend
    os.environ[parallel.WORKERS_ENV] = str(point.workers)
    parallel.shutdown_pool()
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        parallel.shutdown_pool()


def _fresh_planner(**constraint_overrides):
    constraints = Constraints.from_environment(**constraint_overrides) \
        if constraint_overrides else None
    return Planner(corrections=CorrectionStore(), constraints=constraints,
                   bootstrap_bench=None)


def _outcome(fn):
    """A result, or the typed error's name — both comparable."""
    try:
        return fn()
    except ReproError as exc:
        return (type(exc).__name__,)


def _assert_identical(planned, forced, context):
    if isinstance(planned, tuple) or isinstance(forced, tuple):
        assert planned == forced, f"{context}: {planned!r} != {forced!r}"
    else:
        issues = compare_results(planned, forced)
        assert issues == [], f"{context}: {issues}"


@given(theta=st.sampled_from([0.0, 0.5, 1.0, 1.2]),
       seed=st.integers(min_value=0, max_value=2**16))
@_SETTINGS
def test_planned_pick_matches_env_forced_run(theta, seed):
    join_input = ZipfWorkload(300, 300, theta=theta, seed=seed).generate()
    planner = _fresh_planner()
    plan = planner.plan(join_input)
    point = plan.chosen.point
    planned = planner.execute(join_input, plan)
    with _forced_env(point):
        forced = make_join(point.algorithm).run(join_input)
    _assert_identical(planned, forced, point.label())


@pytest.mark.parametrize("backend", BACKENDS)
@given(seed=st.integers(min_value=0, max_value=2**8))
@_SETTINGS
def test_every_backend_pick_matches_its_forced_run(backend, seed):
    """Pin the planner to one backend so all three get exercised even
    where the open argmin would never pick them (scalar)."""
    usable, reason = parallel_status()
    if backend == PARALLEL and not usable:
        pytest.skip(f"parallel backend unusable here: {reason}")
    join_input = ZipfWorkload(256, 256, theta=1.0, seed=seed).generate()
    planner = _fresh_planner(backends=(backend,))
    plan = planner.plan(join_input)
    point = plan.chosen.point
    assert point.backend == backend
    planned = planner.execute(join_input, plan)
    with _forced_env(point):
        forced = make_join(point.algorithm).run(join_input)
    _assert_identical(planned, forced, point.label())


@given(plan_seed=st.integers(min_value=0, max_value=2**16),
       seed=st.integers(min_value=0, max_value=2**8))
@_SETTINGS
def test_planned_pick_matches_forced_run_under_injected_faults(plan_seed,
                                                               seed):
    """Same seeded fault plan on both paths: same recovery and output,
    or the same typed error.  Planning itself happens fault-free (it
    never touches the pipelines), execution is what gets stormed."""
    join_input = ZipfWorkload(192, 192, theta=1.0, seed=seed).generate()
    planner = _fresh_planner()
    plan = planner.plan(join_input)
    point = plan.chosen.point
    faults = seeded_plan(plan_seed, algorithms=[point.algorithm])

    def planned_run():
        with activate_plan(faults):
            return planner.execute(join_input, plan)

    def forced_run():
        with _forced_env(point), activate_plan(faults):
            return make_join(point.algorithm).run(join_input)

    _assert_identical(_outcome(planned_run), _outcome(forced_run),
                      f"{point.label()} faults@{plan_seed}")
