"""Candidate enumeration and constraint handling."""

import pytest

from repro.api import ALGORITHMS
from repro.exec.backend import PARALLEL, SCALAR, VECTOR, parallel_status
from repro.faults.plan import SPILL_ALGORITHM_NAMES
from repro.plan import (
    CandidatePoint,
    Constraints,
    check_feasibility,
    enumerate_candidates,
    worker_ladder,
)


def test_worker_ladder_is_powers_of_two_up_to_the_cap():
    assert worker_ladder(1) == (1,)
    assert worker_ladder(2) == (1, 2)
    assert worker_ladder(4) == (1, 2, 4)
    # Non-power caps keep the cap itself as the top rung.
    assert worker_ladder(6) == (1, 2, 4, 6)


def test_enumeration_covers_every_algorithm():
    points = enumerate_candidates(Constraints(max_workers=2))
    assert {p.algorithm for p in points} == set(ALGORITHMS)
    # Deterministic order: sorted algorithms, registry-order backends.
    assert [p.algorithm for p in points] == sorted(
        p.algorithm for p in points)


def test_enumeration_respects_backend_and_algorithm_filters():
    points = enumerate_candidates(Constraints(
        algorithms=("csh",), backends=(VECTOR,)))
    assert points == [CandidatePoint("csh", VECTOR, 1)]


def test_parallel_candidates_climb_the_ladder_when_usable():
    usable, _ = parallel_status()
    points = enumerate_candidates(Constraints(
        algorithms=("cbase",), max_workers=4))
    parallel_points = [p for p in points if p.backend == PARALLEL]
    if usable:
        assert [p.workers for p in parallel_points] == [1, 2, 4]
    else:
        assert parallel_points == []


def test_labels_show_workers_only_for_parallel():
    assert CandidatePoint("csh", VECTOR).label() == "csh/vector"
    assert CandidatePoint("csh", PARALLEL, 2).label() == "csh/parallel@2"


def test_memory_budget_excludes_non_spill_algorithms():
    constraints = Constraints(memory_budget_bytes=1000)
    spill_algo = sorted(SPILL_ALGORITHM_NAMES)[0]
    non_spill = sorted(set(ALGORITHMS) - set(SPILL_ALGORITHM_NAMES))[0]
    over = check_feasibility(CandidatePoint(non_spill, VECTOR), 0.1,
                             estimated_bytes=5000, constraints=constraints)
    assert not over.ok and "memory budget" in over.reasons[0]
    spills = check_feasibility(CandidatePoint(spill_algo, VECTOR), 0.1,
                               estimated_bytes=5000, constraints=constraints)
    assert spills.ok
    under = check_feasibility(CandidatePoint(non_spill, VECTOR), 0.1,
                              estimated_bytes=500, constraints=constraints)
    assert under.ok


def test_deadline_excludes_slow_predictions():
    constraints = Constraints(deadline_ms=100.0)
    slow = check_feasibility(CandidatePoint("cbase", SCALAR), 0.5,
                             estimated_bytes=0, constraints=constraints)
    assert not slow.ok and "deadline" in slow.reasons[0]
    fast = check_feasibility(CandidatePoint("cbase", VECTOR), 0.05,
                             estimated_bytes=0, constraints=constraints)
    assert fast.ok


def test_constraints_describe_round_trips_to_json():
    import json
    described = Constraints(algorithms=("csh",), deadline_ms=5.0).describe()
    assert json.loads(json.dumps(described)) == described


def test_from_environment_picks_up_the_spill_budget(monkeypatch):
    from repro.store.spill import MEMORY_BUDGET_ENV
    monkeypatch.setenv(MEMORY_BUDGET_ENV, "4096")
    assert Constraints.from_environment().memory_budget_bytes == 4096


def test_empty_constraint_set_is_a_config_error():
    from repro.errors import ConfigError
    from repro.plan import Planner
    from repro.data.generators import uniform_input
    planner = Planner(bootstrap_bench=None)
    with pytest.raises(ConfigError):
        planner.plan(uniform_input(100, 100, n_keys=10, seed=1),
                     Constraints(algorithms=(), backends=()))
