"""The plan gate at test scale: tiny inputs, vector-only, sub-floor."""

import json

from repro.exec.backend import VECTOR
from repro.plan import run_plan_gate


def test_gate_passes_and_writes_artifacts(tmp_path):
    report = run_plan_gate(n_tuples=1500, seed=42, repeats=1,
                           backends=(VECTOR,), out_dir=str(tmp_path),
                           bootstrap_bench=None)
    # At this scale every oracle sits under the timing floor, so the
    # regret check auto-passes — but bit-identity must hold for real.
    assert report.ok, report.render()
    assert all(d.identical for d in report.datasets)
    assert {d.dataset for d in report.datasets} == \
        {"zipf-1.0", "uniform", "dup-only", "empty-s"}

    candidates = json.loads(
        (tmp_path / "plan-candidates.json").read_text(encoding="utf-8"))
    regret = json.loads(
        (tmp_path / "regret-report.json").read_text(encoding="utf-8"))
    assert set(candidates) == {d.dataset for d in report.datasets}
    for table in candidates.values():
        assert table["chosen"] is not None
        assert table["measurements"], "gate measured no candidates"
    assert regret["ok"] is True
    assert regret["threshold"] == 2.0


def test_gate_report_renders_a_verdict(tmp_path):
    report = run_plan_gate(n_tuples=1000, seed=7, repeats=1,
                           backends=(VECTOR,), bootstrap_bench=None)
    text = report.render()
    assert "PASS" in text
    assert "regret threshold 2.0x" in text
    for d in report.datasets:
        assert d.dataset in text


def test_regret_is_picked_over_oracle():
    report = run_plan_gate(n_tuples=1000, seed=7, repeats=1,
                           backends=(VECTOR,), bootstrap_bench=None)
    for d in report.datasets:
        picked = [m for m in d.measurements if m.picked]
        assert len(picked) == 1
        oracle_wall = min(m.measured_wall_seconds for m in d.measurements)
        assert d.oracle_wall_seconds == oracle_wall
        if oracle_wall > 0:
            assert d.regret == \
                picked[0].measured_wall_seconds / oracle_wall
