"""The planner end to end: rank, choose, execute, stamp, learn."""

import json

import pytest

from repro.data.generators import uniform_input
from repro.data.zipf import ZipfWorkload
from repro.errors import ConfigError
from repro.exec.backend import SCALAR
from repro.exec.differential import compare_results
from repro.plan import (
    CorrectionStore,
    Constraints,
    PLAN_META_KEY,
    Planner,
    verify_result_plan,
)
from tests.conftest import assert_result_correct


@pytest.fixture
def planner():
    """In-memory planner with no bench bootstrap: fully deterministic."""
    return Planner(corrections=CorrectionStore(), bootstrap_bench=None)


@pytest.fixture
def workload():
    return ZipfWorkload(2000, 2000, theta=1.0, seed=9).generate()


def test_candidates_rank_by_predicted_wall(planner, workload):
    plan = planner.plan(workload)
    walls = [c.predicted_wall_seconds for c in plan.candidates]
    assert walls == sorted(walls)
    assert plan.chosen is plan.candidates[0]
    # Scalar's 12x interpretation penalty keeps it off the podium.
    assert plan.chosen.point.backend != SCALAR


def test_planning_is_deterministic(planner, workload):
    a = planner.plan(workload)
    b = planner.plan(workload)
    assert a.chosen.point == b.chosen.point
    assert [c.point for c in a.candidates] == [c.point for c in b.candidates]


def test_executed_plan_is_correct_and_stamped(planner, workload):
    result = planner.run(workload, learn=False)
    assert_result_correct(result, workload)
    plan = result.meta[PLAN_META_KEY]
    assert plan["algorithm"] == result.algorithm
    assert plan["realized_wall_seconds"] == pytest.approx(
        result.wall_seconds)
    assert verify_result_plan(result) is None


def test_plan_meta_survives_jsonl_round_trip(planner, workload, tmp_path):
    from repro.exec.serialize import (
        append_results_jsonl,
        results_from_jsonl_file,
    )
    result = planner.run(workload, learn=False)
    artifact = tmp_path / "planned.jsonl"
    append_results_jsonl([result], artifact)
    (reloaded,) = results_from_jsonl_file(artifact)
    assert verify_result_plan(reloaded) is None
    assert reloaded.meta[PLAN_META_KEY]["backend"] == \
        result.meta[PLAN_META_KEY]["backend"]


def test_planned_run_is_bit_identical_to_forced(planner, workload):
    from repro.api import make_join
    from repro.exec.backend import use_backend
    from repro.plan import pinned_workers

    result = planner.run(workload, learn=False)
    point = Planner(corrections=CorrectionStore(),
                    bootstrap_bench=None).plan(workload).chosen.point
    with use_backend(point.backend), pinned_workers(point):
        forced = make_join(point.algorithm).run(workload)
    assert compare_results(result, forced) == []


def test_impossible_deadline_leaves_no_feasible_candidate(planner, workload):
    plan = planner.plan(workload, Constraints(deadline_ms=1e-9))
    assert plan.chosen is None
    assert plan.n_feasible == 0
    assert all(c.reasons for c in plan.candidates)
    with pytest.raises(ConfigError):
        planner.execute(workload, plan)
    with pytest.raises(ConfigError):
        plan.meta()


def test_memory_budget_routes_to_spill_capable_algorithms(planner, workload):
    from repro.faults.plan import SPILL_ALGORITHM_NAMES
    plan = planner.plan(workload, Constraints(memory_budget_bytes=1))
    assert plan.chosen is not None
    feasible = {c.point.algorithm for c in plan.candidates if c.feasible}
    assert feasible <= set(SPILL_ALGORITHM_NAMES)


def test_learning_updates_the_corrections(planner, workload):
    assert len(planner.corrections) == 0
    result = planner.run(workload, learn=True)
    assert len(planner.corrections) > 0
    # The executed point's factors are now learned wall/base ratios.
    plan = result.meta[PLAN_META_KEY]
    key_factors = [
        planner.corrections.factor(plan["algorithm"], p["name"],
                                   plan["backend"])
        for p in plan["phases"]
    ]
    observations = [
        planner.corrections.observations(plan["algorithm"], p["name"],
                                         plan["backend"])
        for p in plan["phases"]
    ]
    assert all(n >= 1 for n in observations)
    assert any(f != 1.0 for f in key_factors)


def test_render_shows_every_candidate_and_the_pick(planner, workload):
    plan = planner.plan(workload)
    text = plan.render()
    assert "candidate table" in text
    for candidate in plan.candidates:
        assert candidate.point.label() in text
    assert f"chosen: {plan.chosen.point.label()}" in text


def test_to_dict_is_json_shaped(planner, workload):
    payload = planner.plan(workload).to_dict()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["chosen"] is not None
    assert len(payload["candidates"]) >= len({"scalar", "vector"})


def test_empty_input_still_plans(planner):
    ji = uniform_input(0, 0, n_keys=1, seed=1)
    result = planner.run(ji, learn=False)
    assert result.output_count == 0
    assert verify_result_plan(result) is None


def test_verify_flags_tampered_bookkeeping(planner, workload):
    result = planner.run(workload, learn=False)
    result.meta[PLAN_META_KEY]["predicted_wall_seconds"] = float("nan")
    assert "finite" in verify_result_plan(result)

    result = planner.run(workload, learn=False)
    result.meta[PLAN_META_KEY]["algorithm"] = "someone-else"
    assert "chose" in verify_result_plan(result)

    result = planner.run(workload, learn=False)
    del result.meta[PLAN_META_KEY]["phases"]
    assert "missing" in verify_result_plan(result)
