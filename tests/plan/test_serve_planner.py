"""``planner: auto`` in the serve engine: per-request backend choice."""

import pytest

from repro.data.zipf import ZipfWorkload
from repro.exec.backend import BACKENDS, VECTOR
from repro.exec.differential import compare_results
from repro.plan import CorrectionStore, ServeProbePlanner, verify_result_plan
from repro.serve.engine import ProbeRequest, ServeEngine

N = 1024
SEED = 42


@pytest.fixture
def workload():
    return ZipfWorkload(N, N, theta=1.0, seed=SEED).generate()


def _engine(workload, planner=None):
    engine = ServeEngine(planner=planner)
    engine.register("rel", workload.r)
    return engine


def _probe(engine, workload):
    return engine.probe_sync(
        ProbeRequest(relation_id="rel", probe=workload.s,
                     morsel_tuples=128))


def test_decision_prices_build_only_when_cold(workload):
    planner = ServeProbePlanner(corrections=CorrectionStore())
    cold = planner.plan_probe(workload.r, workload.s, cold=True)
    warm = planner.plan_probe(workload.r, workload.s, cold=False)
    assert {p.name for p in cold.phases} == {"build", "probe"}
    assert {p.name for p in warm.phases} == {"probe"}
    assert warm.predicted_wall_seconds < cold.predicted_wall_seconds
    assert cold.backend in BACKENDS
    assert len(cold.candidates) >= 1


def test_decision_is_deterministic(workload):
    planner = ServeProbePlanner(corrections=CorrectionStore())
    a = planner.plan_probe(workload.r, workload.s, cold=True)
    b = planner.plan_probe(workload.r, workload.s, cold=True)
    assert a.backend == b.backend
    assert a.predicted_wall_seconds == b.predicted_wall_seconds


def test_no_usable_backend_is_a_config_error(workload):
    from repro.errors import ConfigError
    planner = ServeProbePlanner(corrections=CorrectionStore(),
                                backends=("no-such-backend",))
    with pytest.raises(ConfigError):
        planner.plan_probe(workload.r, workload.s, cold=True)


def test_planned_probe_is_bit_identical_to_plain_serving(workload):
    planner = ServeProbePlanner(corrections=CorrectionStore())
    planned = _probe(_engine(workload, planner=planner), workload)
    plain = _probe(_engine(workload), workload)
    assert compare_results(planned.result, plain.result) == []
    assert planned.chunks == plain.chunks


def test_planned_probe_stamps_verifiable_bookkeeping(workload):
    planner = ServeProbePlanner(corrections=CorrectionStore())
    engine = _engine(workload, planner=planner)
    cold = _probe(engine, workload)
    warm = _probe(engine, workload)
    for outcome, was_cold in ((cold, True), (warm, False)):
        plan = outcome.result.meta["plan"]
        assert plan["algorithm"] == "serve"
        assert plan["cold"] is was_cold
        assert verify_result_plan(outcome.result) is None
    assert planner.planned == 2
    assert planner.observed > 0


def test_serve_planner_learns_and_persists(workload, tmp_path):
    from repro.plan.serve_hook import SAVE_EVERY
    path = tmp_path / "plan_corrections.json"
    planner = ServeProbePlanner(
        corrections=CorrectionStore(path=path),
        backends=(VECTOR,))
    engine = _engine(workload, planner=planner)
    while planner.observed < SAVE_EVERY:
        _probe(engine, workload)
    assert path.exists()
    reloaded = CorrectionStore(path=path)
    assert reloaded.observations("serve", "probe", VECTOR) > 0
