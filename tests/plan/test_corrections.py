"""The learned correction store: EWMA updates, persistence, bootstrap."""

import json

import pytest

from repro.exec.cost_model import blend_correction, clamp_correction
from repro.plan import CORRECTIONS_ENV, CorrectionStore, corrections_path_from_env


def test_unobserved_keys_default_to_one():
    store = CorrectionStore()
    assert store.factor("csh", "probe", "vector") == 1.0
    assert store.observations("csh", "probe", "vector") == 0


def test_first_observation_is_the_ratio_then_ewma():
    store = CorrectionStore(alpha=0.3)
    first = store.observe("csh", "probe", "vector", 1.0, 2.0)
    assert first == pytest.approx(2.0)
    second = store.observe("csh", "probe", "vector", 1.0, 4.0)
    assert second == pytest.approx(blend_correction(2.0, 4.0, alpha=0.3))
    assert store.observations("csh", "probe", "vector") == 2


def test_factors_are_clamped():
    store = CorrectionStore()
    huge = store.observe("csh", "probe", "vector", 1e-9, 1e9)
    assert huge == clamp_correction(huge)
    assert huge <= 1e3


def test_zero_base_observations_are_ignored():
    store = CorrectionStore()
    assert store.observe("csh", "probe", "vector", 0.0, 1.0) == 1.0
    assert len(store) == 0


def test_seed_factor_fills_gaps_but_never_overwrites():
    store = CorrectionStore()
    store.observe("csh", "probe", "vector", 1.0, 3.0)
    store.seed_factor("csh", "probe", "vector", 0.5)
    assert store.factor("csh", "probe", "vector") == pytest.approx(3.0)
    store.seed_factor("csh", "build", "vector", 0.5)
    assert store.factor("csh", "build", "vector") == pytest.approx(0.5)
    assert store.observations("csh", "build", "vector") == 0


def test_save_and_reload_round_trips(tmp_path):
    path = tmp_path / "plan_corrections.json"
    store = CorrectionStore(path=path)
    store.observe("csh", "probe", "vector", 1.0, 2.5)
    store.observe("cbase", "build", "parallel", 2.0, 1.0)
    assert store.save() == path

    reloaded = CorrectionStore(path=path)
    assert reloaded.factor("csh", "probe", "vector") == pytest.approx(2.5)
    assert reloaded.factor("cbase", "build", "parallel") == pytest.approx(0.5)
    assert reloaded.observations("csh", "probe", "vector") == 1


def test_in_memory_store_save_is_a_noop():
    assert CorrectionStore().save() is None


def test_corrupt_file_starts_the_store_empty(tmp_path):
    path = tmp_path / "plan_corrections.json"
    path.write_text("{not json", encoding="utf-8")
    store = CorrectionStore(path=path)
    # Corrupt corrections are a stale cache, never an error.
    assert store.factor("csh", "probe", "vector") == 1.0
    assert len(store) == 0


def test_old_schema_versions_are_discarded(tmp_path):
    path = tmp_path / "plan_corrections.json"
    path.write_text(json.dumps({
        "schema_version": 0,
        "entries": {"csh|probe|vector": {"factor": 9.0}},
    }), encoding="utf-8")
    assert CorrectionStore(path=path).factor("csh", "probe", "vector") == 1.0


def test_path_from_env(monkeypatch):
    monkeypatch.delenv(CORRECTIONS_ENV, raising=False)
    assert corrections_path_from_env() is None
    monkeypatch.setenv(CORRECTIONS_ENV, "/tmp/x.json")
    assert str(corrections_path_from_env()) == "/tmp/x.json"


def test_learn_from_results_reads_plan_metadata():
    class FakeResult:
        meta = {"plan": {
            "algorithm": "csh", "backend": "vector",
            "phases": [
                {"name": "probe", "base_wall_seconds": 1.0,
                 "realized_wall_seconds": 2.0},
                {"name": "build", "base_wall_seconds": 1.0,
                 "realized_wall_seconds": None},  # unrealized: skipped
            ],
        }}

    class PlanlessResult:
        meta = {}

    store = CorrectionStore()
    observed = store.learn_from_results([FakeResult(), PlanlessResult()])
    assert observed == 1
    assert store.factor("csh", "probe", "vector") == pytest.approx(2.0)


def test_learn_from_jsonl_round_trip(tmp_path):
    from repro.data.generators import uniform_input
    from repro.exec.serialize import append_results_jsonl
    from repro.plan import Planner

    planner = Planner(corrections=CorrectionStore(), bootstrap_bench=None)
    result = planner.run(uniform_input(500, 500, n_keys=50, seed=3),
                         learn=False)
    artifact = tmp_path / "traces.jsonl"
    append_results_jsonl([result], artifact)

    fresh = CorrectionStore()
    assert fresh.learn_from_jsonl(artifact) > 0
    plan = result.meta["plan"]
    assert fresh.observations(plan["algorithm"], plan["phases"][0]["name"],
                              plan["backend"]) >= 1


def test_bootstrap_from_missing_bench_is_best_effort(tmp_path):
    store = CorrectionStore()
    assert store.bootstrap_from_bench_file(tmp_path / "absent.json") == 0
    assert len(store) == 0


def test_bootstrap_from_the_committed_baseline_seeds_factors():
    store = CorrectionStore()
    seeded = store.bootstrap_from_bench_file("BENCH_seed.json")
    assert seeded > 0
    # Seeds fill gaps only; they never count as observations.
    assert all(
        entry["observations"] == 0
        for entry in store._ensure_loaded().values()
    )
