"""Workload sketches: exact below the threshold, sampled above it.

The sketch is the planner's only view of the input, so these tests pin
the two invariants the cost models depend on: total tuple counts are
always exact, and heavy hitters survive sampling.
"""

import numpy as np

from repro.data.generators import uniform_input
from repro.data.zipf import ZipfWorkload
from repro.plan import sketch_workload
from repro.plan.sketch import DEFAULT_EXACT_BELOW


def test_small_inputs_sketch_exactly():
    ji = uniform_input(500, 500, n_keys=64, seed=3)
    sketch = sketch_workload(ji)
    assert sketch.exact
    assert sketch.n_r == 500 and sketch.n_s == 500
    assert int(sketch.workload.cr.sum()) == 500
    assert int(sketch.workload.cs.sum()) == 500
    # An exact sketch predicts the true join cardinality.
    from tests.conftest import expected_summary
    count, _ = expected_summary(ji)
    assert sketch.estimated_output == count


def test_large_inputs_sample_but_keep_totals_exact():
    n = DEFAULT_EXACT_BELOW * 4
    ji = ZipfWorkload(n, n, theta=1.0, seed=7).generate()
    sketch = sketch_workload(ji)
    assert not sketch.exact
    assert 0 < sketch.sample_size_r < n
    # Sampling estimates the histogram, never the totals: the cost
    # models price partition passes from exact tuple counts.
    assert int(sketch.workload.cr.sum()) == n
    assert int(sketch.workload.cs.sum()) == n


def test_sampled_sketch_catches_the_heavy_hitter():
    n = DEFAULT_EXACT_BELOW * 4
    ji = ZipfWorkload(n, n, theta=1.2, seed=11).generate()
    sketch = sketch_workload(ji)
    # Under theta=1.2 the top key owns a large share of R; a 5% sample
    # cannot miss it, and its estimated count must be the right order.
    true_top = int(np.bincount(ji.r.keys).max())
    est_top = int(sketch.workload.cr.max())
    assert est_top > true_top / 3
    assert sketch.n_skewed >= 1


def test_sketch_is_deterministic_per_seed():
    n = DEFAULT_EXACT_BELOW * 2
    ji = ZipfWorkload(n, n, theta=1.0, seed=5).generate()
    a = sketch_workload(ji, seed=1)
    b = sketch_workload(ji, seed=1)
    assert np.array_equal(a.workload.keys, b.workload.keys)
    assert np.array_equal(a.workload.cr, b.workload.cr)
    assert a.summary() == b.summary()


def test_estimated_bytes_is_the_spill_planes_currency():
    ji = uniform_input(1000, 2000, n_keys=100, seed=1)
    sketch = sketch_workload(ji)
    assert sketch.estimated_bytes == 12 * 3000


def test_summary_is_json_shaped():
    import json
    ji = uniform_input(300, 300, n_keys=10, seed=2)
    summary = sketch_workload(ji).summary()
    assert json.loads(json.dumps(summary)) == summary
    assert summary["exact"] is True
