"""Planner columns in the bench pipeline (``repro bench --auto``)."""

import json

import pytest

from repro.bench.regression import (
    bench_from_dict,
    bench_to_dict,
    compare_benches,
    comparison_to_dict,
    record_bench,
)
from repro.exec.backend import VECTOR
from repro.plan import CorrectionStore, Planner


@pytest.fixture(scope="module")
def planned_record():
    planner = Planner(corrections=CorrectionStore(), bootstrap_bench=None)
    return record_bench("plan-test", n_tuples=800, repeats=1,
                        backends=(VECTOR,), planner=planner)


def test_planned_bench_annotates_every_case(planned_record):
    assert planned_record.cases
    for case in planned_record.cases:
        assert case.plan is not None
        assert VECTOR in case.plan["predicted_wall_seconds"]
        assert VECTOR in case.plan["realized_wall_seconds"]
        assert case.plan["picked_point"] is not None
    # Exactly one algorithm is the planner's pick.
    assert sum(1 for c in planned_record.cases if c.plan["picked"]) == 1


def test_plan_annotations_round_trip(planned_record):
    reloaded = bench_from_dict(bench_to_dict(planned_record))
    for original, back in zip(planned_record.cases, reloaded.cases):
        assert back.plan == original.plan


def test_plannerless_bench_has_no_plan_columns():
    record = record_bench("plain-test", n_tuples=800, repeats=1,
                          backends=(VECTOR,))
    assert all(c.plan is None for c in record.cases)
    payload = bench_to_dict(record)
    assert all("plan" not in c for c in payload["cases"])


def test_comparison_surfaces_predicted_vs_realized(planned_record):
    baseline = record_bench("baseline", n_tuples=800, repeats=1,
                            backends=(VECTOR,))
    comparison = compare_benches(baseline, planned_record)
    assert comparison.planner_rows
    algorithms = {row["algorithm"] for row in comparison.planner_rows}
    assert algorithms == {c.algorithm for c in planned_record.cases}

    rendered = comparison.render()
    assert "plan:" in rendered
    assert "[picked]" in rendered

    payload = comparison_to_dict(comparison)
    assert payload["planner"] == comparison.planner_rows
    assert json.loads(json.dumps(payload))["planner"]


def test_plannerless_comparison_has_no_planner_key():
    baseline = record_bench("baseline", n_tuples=800, repeats=1,
                            backends=(VECTOR,))
    comparison = compare_benches(baseline, baseline)
    assert comparison.planner_rows == []
    assert "planner" not in comparison_to_dict(comparison)
    assert "plan:" not in comparison.render()
