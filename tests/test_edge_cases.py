"""Edge-case and failure-injection tests across the pipelines."""

import numpy as np
import pytest

from repro import ALGORITHMS, run_all
from repro.core.csh import CSHConfig, CSHJoin
from repro.core.gsh import GSHConfig, GSHJoin
from repro.cpu import CbaseConfig, CbaseJoin
from repro.data.generators import input_from_frequencies, uniform_input
from repro.data.relation import JoinInput, Relation
from repro.data.zipf import ZipfWorkload
from repro.exec.result import compare_results
from tests.conftest import assert_result_correct, expected_summary


def make_input(r_keys, s_keys):
    return JoinInput(
        r=Relation.from_keys(np.asarray(r_keys, dtype=np.uint32), seed=1,
                             name="R"),
        s=Relation.from_keys(np.asarray(s_keys, dtype=np.uint32), seed=2,
                             name="S"),
    )


class TestDegenerateInputs:
    def test_single_tuple_each(self):
        ji = make_input([7], [7])
        results = run_all(ji)
        assert compare_results(list(results.values())) is None
        assert results["csh"].output_count == 1

    def test_single_tuple_no_match(self):
        ji = make_input([7], [8])
        for res in run_all(ji).values():
            assert res.output_count == 0

    def test_empty_r_nonempty_s(self):
        ji = JoinInput(r=Relation.empty("R"),
                       s=Relation.from_keys(
                           np.arange(100, dtype=np.uint32), seed=0))
        for res in run_all(ji).values():
            assert res.output_count == 0

    def test_empty_s_nonempty_r(self):
        ji = JoinInput(r=Relation.from_keys(
            np.arange(100, dtype=np.uint32), seed=0),
            s=Relation.empty("S"))
        for res in run_all(ji).values():
            assert res.output_count == 0

    def test_max_key_value(self):
        """Keys at the top of the 4-byte space must hash and route fine."""
        big = 2**32 - 1
        ji = make_input([big, big - 1, 5], [big, big, 5])
        results = run_all(ji)
        assert compare_results(list(results.values())) is None
        assert results["cbase"].output_count == 3

    def test_all_tuples_same_payload(self):
        r = Relation(np.array([1, 1, 2], np.uint32),
                     np.zeros(3, np.uint32))
        s = Relation(np.array([1, 2, 2], np.uint32),
                     np.zeros(3, np.uint32))
        ji = JoinInput(r=r, s=s)
        for res in run_all(ji).values():
            assert res.output_count == 4
            assert res.output_checksum == 0  # 0 * 0 everywhere


class TestExtremeConfigs:
    def test_cbase_single_thread(self):
        ji = uniform_input(5000, 5000, seed=1)
        res = CbaseJoin(CbaseConfig(n_threads=1)).run(ji)
        assert_result_correct(res, ji)

    def test_cbase_zero_partition_bits(self):
        """bits (0,0): one partition — degenerates to a single join task."""
        ji = uniform_input(3000, 3000, seed=2)
        res = CbaseJoin(CbaseConfig(bits_pass1=0, bits_pass2=0)).run(ji)
        assert_result_correct(res, ji)
        assert res.phase("join").task_count == 1

    def test_cbase_many_bits_tiny_input(self):
        ji = uniform_input(100, 100, seed=3)
        res = CbaseJoin(CbaseConfig(bits_pass1=6, bits_pass2=6)).run(ji)
        assert_result_correct(res, ji)

    def test_csh_full_sample(self):
        """100% sampling: every duplicated key becomes skewed."""
        ji = input_from_frequencies([10, 10, 1], [5, 0, 5], seed=4)
        res = CSHJoin(CSHConfig(sample_rate=1.0, freq_threshold=2)).run(ji)
        assert_result_correct(res, ji)
        assert res.meta["skewed_keys"] >= 2

    def test_csh_threshold_never_met(self):
        """A huge threshold disables skew handling: pure radix join path."""
        ji = ZipfWorkload(10000, 10000, theta=1.0, seed=5).generate()
        res = CSHJoin(CSHConfig(freq_threshold=10**9)).run(ji)
        assert_result_correct(res, ji)
        assert res.meta["skewed_keys"] == 0
        assert res.meta["skewed_output"] == 0

    def test_gsh_top_k_larger_than_distinct(self):
        ji = input_from_frequencies([9000, 8000], [7000, 6000], seed=6)
        res = GSHJoin(GSHConfig(top_k=50)).run(ji)
        assert_result_correct(res, ji)

    def test_gsh_everything_large(self):
        """Tiny threshold: every non-empty partition is 'large'."""
        ji = uniform_input(4000, 4000, seed=7)
        res = GSHJoin(GSHConfig(large_partition_factor=1e-5)).run(ji)
        assert_result_correct(res, ji)
        assert res.meta["large_partitions"] >= 1

    def test_gsh_nothing_large(self):
        ji = ZipfWorkload(4000, 4000, theta=1.0, seed=8).generate()
        res = GSHJoin(GSHConfig(large_partition_factor=1e6)).run(ji)
        assert_result_correct(res, ji)
        assert res.meta["large_partitions"] == 0


class TestSkewAsymmetry:
    def test_skew_only_in_r(self):
        ji = input_from_frequencies([20000] + [1] * 50,
                                    [1] * 51, seed=9)
        results = run_all(ji)
        assert compare_results(list(results.values())) is None
        count, _ = expected_summary(ji)
        assert results["csh"].output_count == count

    def test_skew_only_in_s(self):
        ji = input_from_frequencies([1] * 51,
                                    [20000] + [1] * 50, seed=10)
        results = run_all(ji)
        assert compare_results(list(results.values())) is None

    def test_multiple_disjoint_heavy_keys(self):
        """Heavy keys in R and different heavy keys in S."""
        r_freqs = [5000, 5000, 1, 1, 1, 1]
        s_freqs = [1, 1, 5000, 5000, 1, 1]
        ji = input_from_frequencies(r_freqs, s_freqs, seed=11)
        results = run_all(ji)
        assert compare_results(list(results.values())) is None
        count, _ = expected_summary(ji)
        assert count == 5000 + 5000 + 5000 + 5000 + 1 + 1

    def test_many_medium_keys(self):
        """Moderate skew spread across many keys — nothing dominates but
        everything is above average."""
        ji = input_from_frequencies([50] * 200, [50] * 200, seed=12)
        results = run_all(ji)
        assert compare_results(list(results.values())) is None
        assert results["cbase"].output_count == 200 * 2500
