"""Tests for the Space-Saving heavy-hitter summary and its CSH hookup."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.csh import CSHConfig, CSHJoin
from repro.cpu import CbaseJoin
from repro.cpu.spacesaving import (
    SpaceSavingSummary,
    streaming_skew_detection,
)
from repro.data.generators import input_from_frequencies
from repro.data.zipf import ZipfWorkload
from repro.errors import ConfigError
from repro.exec.counters import OpCounters
from tests.conftest import assert_result_correct


class TestSummary:
    def test_exact_when_under_capacity(self):
        s = SpaceSavingSummary(capacity=16)
        keys = np.repeat(np.array([1, 2, 3], np.uint32), [5, 3, 1])
        s.update(keys)
        detected, report = s.heavy_hitters(threshold=3)
        assert detected.tolist() == [1, 2]
        by_key = {h.key: h for h in report}
        assert by_key[1].count_lower == 5
        assert by_key[1].count_upper == 5

    def test_eviction_keeps_heavy_keys(self):
        """With 2 counters and one dominant key, the dominant key must
        survive any eviction pattern (the Space-Saving guarantee)."""
        rng = np.random.default_rng(0)
        keys = np.concatenate([
            np.full(1000, 7, np.uint32),
            rng.integers(100, 200, 300).astype(np.uint32),
        ])
        keys = rng.permutation(keys)
        s = SpaceSavingSummary(capacity=8)
        s.update(keys)
        detected, _ = s.heavy_hitters(threshold=500)
        assert 7 in detected.tolist()

    def test_guarantee_threshold(self):
        s = SpaceSavingSummary(capacity=10)
        s.update(np.arange(100, dtype=np.uint32))
        assert s.guarantee_threshold() == 10.0

    def test_counters_account_full_scan(self):
        c = OpCounters()
        s = SpaceSavingSummary(capacity=4)
        s.update(np.arange(50, dtype=np.uint32), counters=c)
        assert c.seq_tuple_reads == 50
        assert c.hash_ops == 50

    def test_validation(self):
        with pytest.raises(ConfigError):
            SpaceSavingSummary(0)
        with pytest.raises(ConfigError):
            streaming_skew_detection(np.arange(4, dtype=np.uint32),
                                     min_frequency=0.0)


class TestStreamingDetection:
    def test_detects_all_keys_above_frequency(self):
        freqs = [4000, 2000, 500] + [1] * 500
        ji = input_from_frequencies(freqs, freqs, seed=1)
        detected = streaming_skew_detection(ji.r.keys, min_frequency=0.05)
        n = sum(freqs)
        truth = {i for i, f in enumerate(freqs) if f >= 0.05 * n}
        assert truth <= set(detected.tolist())

    def test_no_false_positives_from_light_keys(self):
        """Reported keys must genuinely be frequent: lower bounds filter
        the eviction-inflated estimates."""
        freqs = [3000] + [2] * 800
        ji = input_from_frequencies(freqs, freqs, seed=2)
        n = sum(freqs)
        detected = streaming_skew_detection(ji.r.keys, min_frequency=0.1)
        counts = np.bincount(ji.r.keys)
        for key in detected.tolist():
            assert counts[key] >= 0.1 * n

    @given(st.integers(0, 2**31), st.floats(0.5, 1.0))
    @settings(max_examples=10, deadline=None)
    def test_hottest_key_always_found(self, seed, theta):
        ji = ZipfWorkload(8000, 10, theta=theta, seed=seed).generate()
        counts = np.bincount(ji.r.keys)
        if counts.max() < 0.01 * len(ji.r):
            return
        detected = streaming_skew_detection(ji.r.keys, min_frequency=0.01)
        assert counts.argmax() in detected.tolist()


class TestCSHIntegration:
    def test_spacesaving_detector_correct(self):
        ji = ZipfWorkload(20000, 20000, theta=1.0, seed=5).generate()
        cfg = CSHConfig(detector="spacesaving", min_skew_frequency=1e-3)
        res = CSHJoin(cfg).run(ji)
        assert_result_correct(res, ji)
        assert res.matches(CbaseJoin().run(ji))
        assert res.meta["skewed_keys"] > 0

    def test_streaming_detects_more_than_small_sample(self):
        ji = ZipfWorkload(50000, 50000, theta=1.0, seed=6).generate()
        stream = CSHJoin(CSHConfig(detector="spacesaving",
                                   min_skew_frequency=2e-4)).run(ji)
        sampled = CSHJoin(CSHConfig(sample_rate=0.002)).run(ji)
        assert stream.meta["skewed_keys"] >= sampled.meta["skewed_keys"]
        assert stream.matches(sampled)

    def test_detector_validation(self):
        with pytest.raises(ConfigError):
            CSHConfig(detector="magic")
        with pytest.raises(ConfigError):
            CSHConfig(min_skew_frequency=1.5)

    def test_streaming_detection_cost_scales_with_table(self):
        """The extension's price: detection touches every tuple."""
        ji = ZipfWorkload(30000, 30000, theta=0.9, seed=7).generate()
        stream = CSHJoin(CSHConfig(detector="spacesaving")).run(ji)
        sampled = CSHJoin(CSHConfig(sample_rate=0.01)).run(ji)
        assert (stream.phase("sample").counters.seq_tuple_reads
                > 50 * sampled.phase("sample").counters.seq_tuple_reads)
