"""Tests for the linear-probing frequency counter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.linear_table import (
    LinearProbingCounter,
    count_sample_frequencies,
)
from repro.errors import CapacityError
from repro.exec.counters import OpCounters


def test_counts_are_exact():
    keys = np.array([4, 4, 4, 2, 2, 9], dtype=np.uint32)
    freq = count_sample_frequencies(keys)
    got = dict(zip(freq.keys.tolist(), freq.counts.tolist()))
    assert got == {4: 3, 2: 2, 9: 1}


def test_results_sorted_by_frequency_desc():
    keys = np.array([1, 2, 2, 3, 3, 3], dtype=np.uint32)
    freq = count_sample_frequencies(keys)
    assert freq.counts.tolist() == [3, 2, 1]
    assert freq.keys[0] == 3


def test_above_threshold_and_top_k():
    keys = np.repeat(np.array([7, 8, 9], dtype=np.uint32), [5, 2, 1])
    freq = count_sample_frequencies(keys)
    assert set(freq.above_threshold(2).tolist()) == {7, 8}
    assert freq.top_k(1).tolist() == [7]
    assert freq.top_k(0).size == 0


def test_capacity_error_when_overfull():
    table = LinearProbingCounter(8)
    with pytest.raises(CapacityError) as exc_info:
        table.insert_all(np.arange(100, dtype=np.uint32))
    # The error carries machine-readable context for the recovery layer.
    ctx = exc_info.value.context
    assert ctx["structure"] == "linear-probing-counter"
    assert ctx["capacity"] == 8
    assert ctx["observed"] == 100
    assert ctx["load_factor"] == 0.75
    assert "capacity=8" in str(exc_info.value)


def test_counters_account_probe_work():
    c = OpCounters()
    keys = np.repeat(np.array([1, 2, 3], dtype=np.uint32), 4)
    count_sample_frequencies(keys, counters=c)
    assert c.sample_ops == 12
    assert c.hash_ops == 12
    assert c.chain_steps >= 12  # at least one slot visit per sample


def test_empty_sample():
    freq = count_sample_frequencies(np.empty(0, dtype=np.uint32))
    assert freq.keys.size == 0


@given(st.lists(st.integers(0, 50), min_size=0, max_size=150))
@settings(max_examples=60)
def test_counts_match_numpy_unique(keys_list):
    keys = np.array(keys_list, dtype=np.uint32)
    freq = count_sample_frequencies(keys)
    uniq, counts = np.unique(keys, return_counts=True)
    got = dict(zip(freq.keys.tolist(), freq.counts.tolist()))
    assert got == dict(zip(uniq.tolist(), counts.tolist()))
    # descending order
    assert all(a >= b for a, b in zip(freq.counts, freq.counts[1:]))
