"""Tests for hashing and bit-extraction utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.hashing import (
    bits_for,
    bucket_ids,
    hash_key,
    hash_keys,
    next_pow2,
    radix_bits,
)
from repro.errors import ConfigError


def test_hash_is_deterministic():
    keys = np.arange(100, dtype=np.uint32)
    assert np.array_equal(hash_keys(keys), hash_keys(keys))


def test_hash_scalar_matches_vector():
    assert hash_key(12345) == int(hash_keys(np.array([12345], np.uint32))[0])


def test_hash_is_bijective_on_sample():
    """fmix32 is a permutation of the 32-bit space: no collisions."""
    keys = np.arange(200000, dtype=np.uint32)
    hashed = hash_keys(keys)
    assert np.unique(hashed).size == keys.size


def test_hash_spreads_low_bits():
    """Sequential keys should spread nearly uniformly over radix bits."""
    keys = np.arange(64000, dtype=np.uint32)
    parts = radix_bits(hash_keys(keys), 0, 6)
    counts = np.bincount(parts, minlength=64)
    assert counts.min() > 0.5 * counts.mean()
    assert counts.max() < 1.5 * counts.mean()


def test_radix_bits_extraction():
    h = np.array([0b1011_0110], dtype=np.uint32)
    assert radix_bits(h, 0, 3)[0] == 0b110
    assert radix_bits(h, 3, 3)[0] == 0b110
    assert radix_bits(h, 0, 0)[0] == 0


def test_radix_bits_rejects_bad_range():
    h = np.zeros(1, np.uint32)
    with pytest.raises(ConfigError):
        radix_bits(h, 30, 4)
    with pytest.raises(ConfigError):
        radix_bits(h, -1, 2)


def test_bucket_ids_use_top_bits():
    h = np.array([0xF0000000, 0x10000000], dtype=np.uint32)
    assert bucket_ids(h, 4).tolist() == [0xF, 0x1]
    assert bucket_ids(h, 0).tolist() == [0, 0]  # single-bucket table
    with pytest.raises(ConfigError):
        bucket_ids(h, 33)


def test_partition_and_bucket_bits_are_disjoint():
    """Same partition id must not force the same bucket id."""
    keys = np.arange(10000, dtype=np.uint32)
    h = hash_keys(keys)
    parts = radix_bits(h, 0, 4)
    in_part0 = h[parts == 0]
    buckets = bucket_ids(in_part0, 8)
    assert np.unique(buckets).size > 100


def test_next_pow2():
    assert next_pow2(0) == 1
    assert next_pow2(1) == 1
    assert next_pow2(2) == 2
    assert next_pow2(3) == 4
    assert next_pow2(1024) == 1024
    assert next_pow2(1025) == 2048


def test_bits_for():
    assert bits_for(1) == 0
    assert bits_for(2) == 1
    assert bits_for(1024) == 10
    assert bits_for(1000) == 10


@given(st.integers(1, 2**30))
@settings(max_examples=50)
def test_next_pow2_properties(n):
    p = next_pow2(n)
    assert p >= n
    assert p & (p - 1) == 0
    assert p < 2 * n or n == 0
