"""End-to-end tests for the CPU pipelines: Cbase, cbase-npj, join phase."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.hashing import hash_keys
from repro.cpu.join_phase import join_partition_pairs, pair_output_counts
from repro.cpu.no_partition_join import NoPartitionConfig, NoPartitionJoin
from repro.cpu.partition import partition_pass
from repro.cpu.radix_join import CbaseConfig, CbaseJoin
from repro.cpu.threads import ThreadPool
from repro.data.generators import (
    constant_key_input,
    input_from_frequencies,
    sequential_input,
    uniform_input,
)
from repro.data.relation import JoinInput, Relation
from repro.data.zipf import ZipfWorkload
from repro.errors import ConfigError
from repro.exec.counters import OpCounters
from tests.conftest import assert_result_correct, expected_summary


def test_cbase_correct_on_uniform(small_uniform):
    assert_result_correct(CbaseJoin().run(small_uniform), small_uniform)


def test_cbase_correct_on_skewed(small_skewed):
    assert_result_correct(CbaseJoin().run(small_skewed), small_skewed)


def test_cbase_correct_on_tiny(tiny_input):
    res = CbaseJoin().run(tiny_input)
    assert res.output_count == 1 * 2 + 2 * 1  # hand-counted joins
    assert_result_correct(res, tiny_input)


def test_cbase_phases_present(small_uniform):
    res = CbaseJoin().run(small_uniform)
    assert [p.name for p in res.phases] == ["partition", "join"]
    assert res.simulated_seconds > 0


def test_cbase_handles_empty_tables():
    ji = JoinInput(r=Relation.empty("R"), s=Relation.empty("S"))
    res = CbaseJoin().run(ji)
    assert res.output_count == 0


def test_cbase_disjoint_keys_produce_nothing():
    ji = input_from_frequencies([1, 1, 0, 0], [0, 0, 1, 1], seed=0)
    res = CbaseJoin().run(ji)
    assert res.output_count == 0


def test_cbase_explicit_bits_respected():
    ji = uniform_input(2000, 2000, seed=1)
    res = CbaseJoin(CbaseConfig(bits_pass1=3, bits_pass2=2)).run(ji)
    assert res.meta["bits_pass1"] == 3
    assert res.meta["bits_pass2"] == 2
    assert_result_correct(res, ji)


def test_cbase_split_triggers_on_dominant_key():
    """A fully skewed input must trip the oversized-partition splitting."""
    ji = constant_key_input(20000, 1000, seed=0)
    cfg = CbaseConfig(bits_pass1=3, bits_pass2=2, split_factor=2.0,
                      split_bits=2)
    res = CbaseJoin(cfg).run(ji)
    assert res.phase("partition").details.get("split_partitions", 0) >= 1
    assert_result_correct(res, ji)


def test_cbase_config_validation():
    with pytest.raises(ConfigError):
        CbaseConfig(n_threads=0)
    with pytest.raises(ConfigError):
        CbaseConfig(split_factor=1.0)
    with pytest.raises(ConfigError):
        CbaseConfig(split_bits=-1)


def test_cbase_join_time_grows_with_skew():
    lo = ZipfWorkload(30000, 30000, theta=0.2, seed=1).generate()
    hi = ZipfWorkload(30000, 30000, theta=1.0, seed=1).generate()
    t_lo = CbaseJoin().run(lo).phase("join").simulated_seconds
    t_hi = CbaseJoin().run(hi).phase("join").simulated_seconds
    assert t_hi > 5 * t_lo


def test_cbase_partition_time_stable_under_skew():
    """Figure 1's observation: partition time barely moves with skew."""
    lo = ZipfWorkload(30000, 30000, theta=0.0, seed=2).generate()
    hi = ZipfWorkload(30000, 30000, theta=1.0, seed=2).generate()
    t_lo = CbaseJoin().run(lo).phase("partition").simulated_seconds
    t_hi = CbaseJoin().run(hi).phase("partition").simulated_seconds
    assert t_hi < 2.0 * t_lo


def test_npj_correct(small_uniform, small_skewed, tiny_input):
    for ji in (small_uniform, small_skewed, tiny_input):
        assert_result_correct(NoPartitionJoin().run(ji), ji)


def test_npj_phases():
    ji = sequential_input(1000, seed=0)
    res = NoPartitionJoin().run(ji)
    assert [p.name for p in res.phases] == ["build", "probe"]
    assert res.counters.random_accesses > 0


def test_npj_slower_than_cbase_on_uniform():
    """Figure 4a: cbase-npj is the worst performer."""
    ji = uniform_input(50000, 50000, seed=3)
    t_npj = NoPartitionJoin().run(ji).simulated_seconds
    t_cbase = CbaseJoin().run(ji).simulated_seconds
    assert t_npj > t_cbase


def test_npj_config_validation():
    with pytest.raises(ConfigError):
        NoPartitionConfig(n_threads=0)


def test_queue_phase_length_mismatch_reports_counts():
    pool = ThreadPool(2)
    tasks = [OpCounters(hash_ops=10)] * 3
    with pytest.raises(ConfigError, match=r"2 extra costs for 3 tasks"):
        pool.queue_phase_seconds(tasks, extra_task_seconds=[0.1, 0.2])


def test_join_partition_pairs_requires_aligned_fanout():
    keys = np.arange(100, dtype=np.uint32)
    pr = partition_pass(keys, keys, hash_keys(keys), 0, 2, 2).partitioned
    ps = partition_pass(keys, keys, hash_keys(keys), 0, 3, 2).partitioned
    with pytest.raises(ValueError):
        join_partition_pairs(pr, ps, ThreadPool(2))


def test_pair_output_counts_sum_to_total():
    ji = uniform_input(3000, 3000, n_keys=500, seed=5)
    pr = partition_pass(ji.r.keys, ji.r.payloads, hash_keys(ji.r.keys),
                        0, 3, 2).partitioned
    ps = partition_pass(ji.s.keys, ji.s.payloads, hash_keys(ji.s.keys),
                        0, 3, 2).partitioned
    counts = pair_output_counts(pr, ps)
    total, _ = expected_summary(ji)
    assert int(sum(counts)) == total


@given(st.integers(0, 2**32 - 1), st.integers(1, 6), st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_cbase_vs_npj_agree_property(seed, scale_r, scale_s):
    ji = uniform_input(200 * scale_r, 200 * scale_s, n_keys=150,
                       seed=seed)
    a = CbaseJoin(CbaseConfig(n_threads=4)).run(ji)
    b = NoPartitionJoin(NoPartitionConfig(n_threads=4)).run(ji)
    assert a.matches(b)
    assert_result_correct(a, ji)
