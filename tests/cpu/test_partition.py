"""Tests for radix partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.hashing import hash_keys, radix_bits
from repro.cpu.partition import (
    PartitionedRelation,
    choose_radix_bits,
    partition_pass,
    partition_relation,
    refine_pass,
)
from repro.errors import ConfigError


def make_input(n, n_keys=64, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, n_keys, n).astype(np.uint32)
    pays = rng.integers(0, 2**31, n).astype(np.uint32)
    return keys, pays


def tuple_multiset(keys, pays):
    return sorted(zip(keys.tolist(), pays.tolist()))


def test_partition_pass_is_permutation():
    keys, pays = make_input(5000)
    res = partition_pass(keys, pays, hash_keys(keys), 0, 4, n_threads=4)
    pr = res.partitioned
    assert tuple_multiset(pr.keys, pr.payloads) == tuple_multiset(keys, pays)


def test_partition_pass_groups_by_radix():
    keys, pays = make_input(3000)
    res = partition_pass(keys, pays, hash_keys(keys), 0, 3, n_threads=3)
    pr = res.partitioned
    for p in range(pr.fanout):
        k, _ = pr.partition(p)
        if k.size:
            assert np.all(radix_bits(hash_keys(k), 0, 3) == p)


def test_partition_sizes_match_offsets():
    keys, pays = make_input(1000)
    res = partition_pass(keys, pays, hash_keys(keys), 0, 4, n_threads=2)
    pr = res.partitioned
    assert pr.sizes().sum() == 1000
    assert pr.fanout == 16


def test_partition_counters_cover_all_tuples():
    keys, pays = make_input(1024)
    res = partition_pass(keys, pays, hash_keys(keys), 0, 4, n_threads=8)
    total = res.total_counters
    assert total.tuple_moves == 1024
    assert total.seq_tuple_reads == 2048
    assert len(res.unit_counters) == 8


def test_two_pass_refine_groups_by_both_bit_ranges():
    keys, pays = make_input(4000, n_keys=5000, seed=3)
    pass1, pass2 = partition_relation(keys, pays, 3, 2, n_threads=4)
    pr = pass2.partitioned
    assert pr.fanout == 32
    for p in range(pr.fanout):
        k, _ = pr.partition(p)
        if k.size:
            h = hash_keys(k)
            assert np.all(radix_bits(h, 0, 3) == p >> 2)
            assert np.all(radix_bits(h, 3, 2) == p % 4)
    assert tuple_multiset(pr.keys, pr.payloads) == tuple_multiset(keys, pays)


def test_refine_pass_mask_passthrough():
    keys, pays = make_input(2000)
    res = partition_pass(keys, pays, hash_keys(keys), 0, 2, n_threads=2)
    mask = np.array([True, False, False, False])
    ref = refine_pass(res.partitioned, 2, 2, refine_mask=mask)
    pr = ref.partitioned
    assert pr.fanout == 16
    # untouched partitions sit in sub-slot 0
    for parent in (1, 2, 3):
        for sub in (1, 2, 3):
            lo, hi = pr.offsets[parent * 4 + sub], pr.offsets[parent * 4 + sub + 1]
            assert lo == hi
    assert tuple_multiset(pr.keys, pr.payloads) == tuple_multiset(keys, pays)
    # exactly one refine task ran
    assert len(ref.unit_counters) == 1


def test_same_key_tuples_stay_together_under_refinement():
    """The paper's core observation: splitting with more hash bits cannot
    separate tuples that share a join key."""
    keys = np.full(1000, 77, dtype=np.uint32)
    pays = np.arange(1000, dtype=np.uint32)
    pass1, pass2 = partition_relation(keys, pays, 4, 4, n_threads=4)
    sizes = pass2.partitioned.sizes()
    assert (sizes > 0).sum() == 1
    assert sizes.max() == 1000


def test_partitioned_relation_validation():
    with pytest.raises(ConfigError):
        PartitionedRelation(np.zeros(4, np.uint32), np.zeros(4, np.uint32),
                            offsets=np.array([0, 2, 3]))  # does not span
    with pytest.raises(ConfigError):
        PartitionedRelation(np.zeros(4, np.uint32), np.zeros(4, np.uint32),
                            offsets=np.array([0, 3, 2, 4]))  # decreasing


def test_choose_radix_bits_targets_partition_size():
    b1, b2 = choose_radix_bits(1 << 20, 2048)
    assert 1 << (b1 + b2) == (1 << 20) // 2048
    assert abs(b1 - b2) <= 1
    assert choose_radix_bits(100, 2048) == (0, 0)


def test_choose_radix_bits_validation():
    with pytest.raises(ConfigError):
        choose_radix_bits(100, 0)


@given(st.integers(1, 3000), st.integers(0, 5), st.integers(1, 8),
       st.integers(0, 10))
@settings(max_examples=40, deadline=None)
def test_partition_permutation_property(n, bits, threads, seed):
    keys, pays = make_input(n, n_keys=max(n // 2, 1), seed=seed)
    res = partition_pass(keys, pays, hash_keys(keys), 0, bits, threads)
    pr = res.partitioned
    assert pr.fanout == 1 << bits
    assert tuple_multiset(pr.keys, pr.payloads) == tuple_multiset(keys, pays)
    assert res.total_counters.tuple_moves == n
