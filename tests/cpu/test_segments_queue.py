"""Tests for segment splitting and the task-queue schedule simulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.segments import split_segments
from repro.cpu.task_queue import (
    greedy_schedule,
    makespan_bounds,
    static_makespan,
)
from repro.errors import ConfigError


def test_split_segments_cover_range():
    segs = split_segments(10, 3)
    assert segs == [(0, 4), (4, 7), (7, 10)]


def test_split_segments_more_threads_than_items():
    segs = split_segments(2, 5)
    assert len(segs) == 5
    sizes = [b - a for a, b in segs]
    assert sum(sizes) == 2
    assert max(sizes) <= 1


def test_split_segments_validation():
    with pytest.raises(ConfigError):
        split_segments(-1, 2)
    with pytest.raises(ConfigError):
        split_segments(5, 0)


@given(st.integers(0, 10000), st.integers(1, 64))
@settings(max_examples=60)
def test_split_segments_properties(n, t):
    segs = split_segments(n, t)
    assert len(segs) == t
    assert segs[0][0] == 0
    assert segs[-1][1] == n
    sizes = [b - a for a, b in segs]
    assert sum(sizes) == n
    assert max(sizes) - min(sizes) <= 1
    for (a1, b1), (a2, b2) in zip(segs, segs[1:]):
        assert b1 == a2


def test_greedy_schedule_single_worker_is_sum():
    res = greedy_schedule([1.0, 2.0, 3.0], 1)
    assert res.makespan == pytest.approx(6.0)


def test_greedy_schedule_dominant_task():
    """One huge task dominates regardless of worker count — the paper's
    skewed join-task phenomenon."""
    costs = [100.0] + [1.0] * 50
    res = greedy_schedule(costs, 20)
    assert res.makespan == pytest.approx(100.0)
    assert res.idle_fraction > 0.8


def test_greedy_schedule_balanced_tasks():
    res = greedy_schedule([1.0] * 40, 20)
    assert res.makespan == pytest.approx(2.0)
    assert res.idle_fraction == pytest.approx(0.0)


def test_greedy_schedule_assignment_is_fifo():
    res = greedy_schedule([5.0, 1.0, 1.0], 2)
    # task 0 -> worker 0; tasks 1,2 -> worker 1
    assert res.assignment.tolist() == [0, 1, 1]


def test_greedy_schedule_empty():
    res = greedy_schedule([], 4)
    assert res.makespan == 0.0


def test_greedy_schedule_validation():
    with pytest.raises(ConfigError):
        greedy_schedule([1.0], 0)
    with pytest.raises(ConfigError):
        greedy_schedule([-1.0], 2)


def test_static_makespan():
    assert static_makespan([0.5, 2.0, 1.0]) == 2.0
    assert static_makespan([]) == 0.0
    with pytest.raises(ConfigError):
        static_makespan([-1.0])


@given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=200),
       st.integers(1, 32))
@settings(max_examples=80)
def test_greedy_within_list_schedule_bounds(costs, workers):
    res = greedy_schedule(costs, workers)
    lower, upper = makespan_bounds(costs, workers)
    assert res.makespan >= lower - 1e-9
    assert res.makespan <= upper + 1e-9


@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=100))
@settings(max_examples=40)
def test_more_workers_never_slower(costs):
    m4 = greedy_schedule(costs, 4).makespan
    m8 = greedy_schedule(costs, 8).makespan
    assert m8 <= m4 + 1e-9
