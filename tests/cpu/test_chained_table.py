"""Tests for the chained hash table, including grouped == lockstep."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.chained_table import ChainedHashTable
from repro.errors import CapacityError
from repro.exec.counters import OpCounters
from repro.exec.output import JoinOutputBuffer

rel_strategy = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 500)),
    min_size=0, max_size=60,
)


def to_cols(pairs):
    k = np.array([p[0] for p in pairs], dtype=np.uint32)
    v = np.array([p[1] for p in pairs], dtype=np.uint32)
    return k, v


def test_build_then_double_build_rejected():
    t = ChainedHashTable(8)
    t.build(np.array([1], np.uint32), np.array([2], np.uint32))
    with pytest.raises(CapacityError) as exc_info:
        t.build(np.array([1], np.uint32), np.array([2], np.uint32))
    ctx = exc_info.value.context
    assert ctx["structure"] == "chained-hash-table"
    assert ctx["state"] == "built"
    assert ctx["n_buckets"] == 8
    assert ctx["n_entries"] == 1


def test_probe_before_build_rejected():
    t = ChainedHashTable(8)
    buf = JoinOutputBuffer(8)
    with pytest.raises(CapacityError) as exc_info:
        t.probe_grouped(np.array([1], np.uint32), np.array([2], np.uint32), buf)
    ctx = exc_info.value.context
    assert ctx["structure"] == "chained-hash-table"
    assert ctx["state"] == "unbuilt"


def test_bucket_count_rounded_to_pow2():
    assert ChainedHashTable(100).n_buckets == 128


def test_chain_lengths_count_entries():
    keys = np.array([5, 5, 5, 9], dtype=np.uint32)
    t = ChainedHashTable(4)
    t.build(keys, keys)
    assert t._chain_lengths.sum() == 4
    assert t.max_chain_length() >= 3  # the three 5s share a bucket


def test_build_counters():
    t = ChainedHashTable(16)
    c = OpCounters()
    t.build(np.arange(10, dtype=np.uint32), np.arange(10, dtype=np.uint32),
            counters=c)
    assert c.table_inserts == 10
    assert c.hash_ops == 10
    assert c.random_accesses == 0


def test_build_random_access_flag():
    t = ChainedHashTable(16)
    c = OpCounters()
    t.build(np.arange(10, dtype=np.uint32), np.arange(10, dtype=np.uint32),
            counters=c, random_access=True)
    assert c.random_accesses == 10


def test_probe_counts_full_chain_walks():
    """A chained-table probe walks the whole chain of its bucket."""
    keys = np.full(50, 3, dtype=np.uint32)
    t = ChainedHashTable(8)
    t.build(keys, keys)
    c = OpCounters()
    buf = JoinOutputBuffer(1 << 12)
    t.probe_grouped(np.array([3], np.uint32), np.array([1], np.uint32),
                    buf, counters=c)
    assert c.chain_steps == 50
    assert c.key_compares == 50
    assert c.output_tuples == 50


@given(rel_strategy, rel_strategy)
@settings(max_examples=100, deadline=None)
def test_grouped_and_lockstep_agree(r_pairs, s_pairs):
    """The fast grouped probe must be indistinguishable from the literal
    chain walk: same counters, same output summary."""
    rk, rv = to_cols(r_pairs)
    sk, sv = to_cols(s_pairs)
    t1 = ChainedHashTable(8)
    t1.build(rk, rv)
    t2 = ChainedHashTable(8)
    t2.build(rk, rv)
    c1, c2 = OpCounters(), OpCounters()
    b1, b2 = JoinOutputBuffer(1 << 12), JoinOutputBuffer(1 << 12)
    s1 = t1.probe_grouped(sk, sv, b1, counters=c1)
    s2 = t2.probe_lockstep(sk, sv, b2, counters=c2)
    assert s1.count == s2.count
    assert s1.checksum == s2.checksum
    assert c1.as_dict() == c2.as_dict()
    assert sorted(map(tuple, b1.snapshot().tolist())) == sorted(
        map(tuple, b2.snapshot().tolist()))


@given(rel_strategy, rel_strategy)
@settings(max_examples=60, deadline=None)
def test_probe_against_dict_semantics(r_pairs, s_pairs):
    rk, rv = to_cols(r_pairs)
    sk, sv = to_cols(s_pairs)
    t = ChainedHashTable(16)
    t.build(rk, rv)
    buf = JoinOutputBuffer(1 << 12)
    summary = t.probe_grouped(sk, sv, buf)
    from collections import Counter
    r_count = Counter(rk.tolist())
    expect = sum(r_count.get(k, 0) for k in sk.tolist())
    assert summary.count == expect
