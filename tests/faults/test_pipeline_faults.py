"""Injection through the real pipelines: recovery, degradation, fallback.

Each test runs a pipeline fault-free for a baseline, re-runs it under an
activated fault plan, and requires the faulted run to (a) produce the
identical join output, (b) charge at least as much simulated time as the
baseline (a retry off the critical path can legitimately be hidden by
parallel workers, so strict growth is not guaranteed — the injected
report is the recovery evidence), and (c) carry consistent failure
reports and trace counters.
"""

import pytest

from tests.conftest import assert_result_correct
from repro.api import make_join
from repro.errors import ReproError, UnrecoveredFaultError
from repro.faults.plan import (
    CAPACITY_OVERFLOW,
    FaultPlan,
    FaultSpec,
    KERNEL_ABORT,
    KERNEL_OOM,
    WORKER_CRASH,
)
from repro.faults.policy import RecoveryPolicy, activate_policy
from repro.faults.report import verify_result_faults
from repro.faults.scope import activate_plan
from repro.obs.trace import verify_result_trace


def plan_of(kind, point, **kw):
    return FaultPlan((FaultSpec(kind=kind, point=point, **kw),))


def run_faulted(algorithm, plan, join_input, policy=None):
    with activate_plan(plan), \
         activate_policy(policy or RecoveryPolicy()):
        return make_join(algorithm).run(join_input)


def check_recovered(result, baseline, join_input):
    assert result.matches(baseline)
    assert_result_correct(result, join_input)
    assert result.simulated_seconds >= baseline.simulated_seconds
    assert any(r.injected for r in result.faults)
    assert verify_result_faults(result) is None
    assert verify_result_trace(result) is None


@pytest.mark.parametrize("algorithm", ["cbase", "cbase-npj", "csh"])
def test_cpu_worker_crash_recovers(algorithm, small_skewed):
    baseline = make_join(algorithm).run(small_skewed)
    result = run_faulted(algorithm, plan_of(WORKER_CRASH, "task"),
                         small_skewed)
    check_recovered(result, baseline, small_skewed)
    report = next(r for r in result.faults if r.injected)
    assert report.kind == WORKER_CRASH and report.recovered


@pytest.mark.parametrize("algorithm", ["cbase", "csh"])
def test_cpu_phase_abort_reruns(algorithm, small_skewed):
    baseline = make_join(algorithm).run(small_skewed)
    result = run_faulted(algorithm, plan_of(KERNEL_ABORT, "phase"),
                         small_skewed)
    check_recovered(result, baseline, small_skewed)


def test_npj_capacity_overflow_regrows(small_skewed):
    baseline = make_join("cbase-npj").run(small_skewed)
    result = run_faulted("cbase-npj", plan_of(CAPACITY_OVERFLOW, "capacity"),
                         small_skewed)
    check_recovered(result, baseline, small_skewed)
    report = next(r for r in result.faults if r.injected)
    assert report.action == "regrow"


def test_csh_detector_overflow_regrows(small_skewed):
    baseline = make_join("csh").run(small_skewed)
    result = run_faulted("csh", plan_of(CAPACITY_OVERFLOW, "detect"),
                         small_skewed)
    check_recovered(result, baseline, small_skewed)
    report = next(r for r in result.faults if r.injected)
    assert report.point == "detect" and report.action == "regrow"


@pytest.mark.parametrize("kind", [KERNEL_ABORT, KERNEL_OOM])
@pytest.mark.parametrize("algorithm", ["gbase", "gsh"])
def test_gpu_kernel_fault_relaunches(algorithm, kind, small_skewed):
    baseline = make_join(algorithm).run(small_skewed)
    result = run_faulted(algorithm, plan_of(kind, "kernel"), small_skewed)
    check_recovered(result, baseline, small_skewed)
    report = next(r for r in result.faults if r.injected)
    assert report.action == "relaunch" and report.kind == kind
    assert "fallback" not in result.meta


def test_gbase_capacity_overflow_resplits(small_skewed):
    baseline = make_join("gbase").run(small_skewed)
    result = run_faulted("gbase", plan_of(CAPACITY_OVERFLOW, "capacity"),
                         small_skewed)
    check_recovered(result, baseline, small_skewed)
    report = next(r for r in result.faults if r.injected)
    assert report.action == "re-split"


def test_gsh_split_failure_degrades_to_sublists(small_skewed):
    baseline = make_join("gsh").run(small_skewed)
    result = run_faulted("gsh", plan_of(CAPACITY_OVERFLOW, "split"),
                         small_skewed)
    assert result.matches(baseline)
    assert_result_correct(result, small_skewed)
    assert result.meta["degraded"] == "gbase-sublist"
    assert "skew-join" not in [p.name for p in result.phases]
    report = next(r for r in result.faults if r.injected)
    assert report.action == "fallback:gbase-sublist"
    assert verify_result_faults(result) is None
    assert verify_result_trace(result) is None


@pytest.mark.parametrize("algorithm", ["gbase", "gsh"])
def test_gpu_exhausted_kernel_falls_back_to_cpu(algorithm, small_skewed):
    baseline = make_join(algorithm).run(small_skewed)
    plan = plan_of(KERNEL_ABORT, "kernel", repeat=10)
    result = run_faulted(algorithm, plan, small_skewed)
    assert result.matches(baseline)
    assert_result_correct(result, small_skewed)
    assert result.meta["fallback"] == "cbase-npj"
    assert [p.name for p in result.phases][-1] == "fallback"
    # The aborted GPU attempt and the CPU fallback both leave reports.
    assert any(not r.recovered for r in result.faults)
    assert any(r.recovered and r.action == "fallback:cbase-npj"
               for r in result.faults)
    assert verify_result_faults(result) is None
    assert verify_result_trace(result) is None


def test_fallback_disabled_raises_typed_error(small_skewed):
    plan = plan_of(KERNEL_ABORT, "kernel", repeat=10)
    policy = RecoveryPolicy(gpu_cpu_fallback=False)
    with pytest.raises(UnrecoveredFaultError) as exc_info:
        run_faulted("gbase", plan, small_skewed, policy=policy)
    assert isinstance(exc_info.value, ReproError)
    assert exc_info.value.report is not None


def test_gsh_sublist_fallback_disabled_escalates(small_skewed):
    baseline = make_join("gsh").run(small_skewed)
    plan = plan_of(CAPACITY_OVERFLOW, "split")
    policy = RecoveryPolicy(gsh_sublist_fallback=False)
    # The split failure cannot degrade; it escalates out of the run as a
    # CapacityError (typed), not a bare exception.
    with pytest.raises(ReproError):
        run_faulted("gsh", plan, small_skewed, policy=policy)
    # And with both rungs enabled the same plan recovers exactly.
    recovered = run_faulted("gsh", plan, small_skewed)
    assert recovered.matches(baseline)


def test_fault_free_run_is_unchanged(small_skewed):
    baseline = make_join("cbase").run(small_skewed)
    again = make_join("cbase").run(small_skewed)
    assert again.matches(baseline)
    assert again.simulated_seconds == baseline.simulated_seconds
    assert again.faults == []
