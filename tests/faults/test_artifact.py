"""Artifact corruption: torn appends, tolerant loads, atomic repair."""

import warnings

import pytest

from repro.api import make_join
from repro.errors import ArtifactCorruptionError, ReproError
from repro.exec.serialize import (
    append_results_jsonl,
    results_from_jsonl_file,
    results_to_jsonl,
)
from repro.faults.plan import ARTIFACT_CORRUPTION, FaultPlan, FaultSpec
from repro.faults.scope import activate_plan, fault_scope
from repro.obs.export import read_jsonl


@pytest.fixture(scope="module")
def one_result(request):
    from repro.data.zipf import ZipfWorkload

    join_input = ZipfWorkload(2048, 2048, theta=0.9, seed=3).generate()
    return make_join("cbase").run(join_input)


def artifact_plan():
    return FaultPlan((FaultSpec(kind=ARTIFACT_CORRUPTION,
                                point="artifact"),))


def test_append_fsyncs_clean_lines(tmp_path, one_result):
    path = tmp_path / "results.jsonl"
    assert append_results_jsonl([one_result], path) == 1
    assert append_results_jsonl([one_result], path) == 1
    loaded = results_from_jsonl_file(path)
    assert len(loaded) == 2
    assert all(r.matches(one_result) for r in loaded)


def test_injected_torn_append_raises_typed_and_truncates(tmp_path,
                                                         one_result):
    path = tmp_path / "torn.jsonl"
    append_results_jsonl([one_result], path)
    with activate_plan(artifact_plan()), fault_scope("cbase") as scope:
        with pytest.raises(ArtifactCorruptionError) as exc_info:
            append_results_jsonl([one_result], path)
    assert exc_info.value.report is not None
    assert scope.reports and not scope.reports[0].recovered
    text = path.read_text(encoding="utf-8")
    assert not text.endswith("\n")  # the torn line has no newline
    # Strict load refuses the damaged artifact...
    with pytest.raises(ReproError):
        results_from_jsonl_file(path)
    # ...tolerant load warns, drops the torn line, keeps the intact one.
    with pytest.warns(RuntimeWarning, match="torn append"):
        loaded = results_from_jsonl_file(path, tolerant=True)
    assert len(loaded) == 1 and loaded[0].matches(one_result)


def test_tolerant_load_rejects_interior_corruption(tmp_path, one_result):
    path = tmp_path / "interior.jsonl"
    good = results_to_jsonl([one_result])
    path.write_text("{ not json\n" + good, encoding="utf-8")
    # Interior damage is not a torn append: always an error.
    with pytest.raises(ReproError):
        read_jsonl(path, tolerant=True)


def test_tolerant_load_of_clean_file_does_not_warn(tmp_path, one_result):
    path = tmp_path / "clean.jsonl"
    append_results_jsonl([one_result], path)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        loaded = results_from_jsonl_file(path, tolerant=True)
    assert len(loaded) == 1


def test_faults_round_trip_through_jsonl(tmp_path):
    from repro.data.zipf import ZipfWorkload
    from repro.faults.plan import WORKER_CRASH, FaultSpec
    from repro.faults.scope import activate_plan

    join_input = ZipfWorkload(2048, 2048, theta=0.9, seed=3).generate()
    plan = FaultPlan((FaultSpec(kind=WORKER_CRASH, point="task"),))
    with activate_plan(plan):
        record = make_join("cbase").run(join_input)
    assert record.faults, "the injected crash must leave a report"
    path = tmp_path / "faults.jsonl"
    append_results_jsonl([record], path)
    loaded = results_from_jsonl_file(path)[0]
    assert loaded.faults == record.faults
    assert loaded.matches(record)
