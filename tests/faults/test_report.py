"""Failure reports: round-trip, metrics mirroring, consistency checks."""

from repro.exec.result import JoinResult
from repro.faults.plan import CAPACITY_OVERFLOW, WORKER_CRASH
from repro.faults.report import (
    FailureReport,
    INJECTED_COUNTER,
    RECOVERED_COUNTER,
    RETRIES_COUNTER,
    UNRECOVERED_COUNTER,
    attach_posthoc_report,
    bump_trace_counter,
    count_fault_metrics,
    verify_result_faults,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecord


def make_report(**overrides):
    base = dict(
        kind=WORKER_CRASH, point="task", algorithm="cbase", phase="join",
        action="retry", recovered=True, injected=True, retries=2,
        backoff_seconds=3e-4, error="injected worker-crash",
        context={"partition": 3, "capacity": 4096},
    )
    base.update(overrides)
    return FailureReport(**base)


def test_report_round_trip():
    report = make_report()
    rebuilt = FailureReport.from_dict(report.to_dict())
    assert rebuilt == report
    assert rebuilt.to_dict() == report.to_dict()


def test_report_summary_line_mentions_outcome():
    assert "recovered" in make_report().summary_line()
    assert "UNRECOVERED" in make_report(recovered=False).summary_line()
    assert "organic" in make_report(injected=False).summary_line()


def test_count_fault_metrics_explicit_registry():
    metrics = MetricsRegistry()
    count_fault_metrics(make_report(), metrics=metrics)
    count_fault_metrics(
        make_report(recovered=False, retries=0, kind=CAPACITY_OVERFLOW),
        metrics=metrics)
    snap = metrics.snapshot()
    assert snap[INJECTED_COUNTER]["value"] == 2
    assert snap[RECOVERED_COUNTER]["value"] == 1
    assert snap[UNRECOVERED_COUNTER]["value"] == 1
    assert snap[RETRIES_COUNTER]["value"] == 2
    assert snap[f"faults.kind.{WORKER_CRASH}"]["value"] == 1


def result_with_trace():
    result = JoinResult(algorithm="cbase", n_r=10, n_s=10,
                        output_count=5, output_checksum=7)
    result.trace = TraceRecord(name="cbase", attrs={}, spans=[], metrics={})
    return result


def test_verify_result_faults_passes_fault_free():
    assert verify_result_faults(result_with_trace()) is None


def test_verify_result_faults_flags_missing_counters():
    result = result_with_trace()
    result.faults.append(make_report())
    error = verify_result_faults(result)
    assert error is not None and INJECTED_COUNTER in error


def test_verify_result_faults_flags_reports_without_trace():
    result = result_with_trace()
    result.trace = None
    result.faults.append(make_report())
    assert "no trace" in verify_result_faults(result)


def test_attach_posthoc_report_keeps_consistency():
    result = result_with_trace()
    attach_posthoc_report(result, make_report())
    assert verify_result_faults(result) is None
    assert result.trace.metrics[INJECTED_COUNTER]["value"] == 1
    assert result.trace.metrics[RETRIES_COUNTER]["value"] == 2


def test_bump_trace_counter_creates_and_increments():
    metrics = {}
    bump_trace_counter(metrics, "faults.injected", 1)
    bump_trace_counter(metrics, "faults.injected", 2)
    bump_trace_counter(metrics, "faults.noop", 0)
    assert metrics["faults.injected"]["value"] == 3
    assert "faults.noop" not in metrics
