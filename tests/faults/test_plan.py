"""Fault plans: spec matching, point mapping, seeded determinism."""

import pytest

from repro.errors import ConfigError
from repro.faults.plan import (
    ARTIFACT_CORRUPTION,
    CAPACITY_OVERFLOW,
    DEFAULT_CHAOS_ALGORITHMS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    KERNEL_ABORT,
    KERNEL_OOM,
    WORKER_CRASH,
    injection_point,
    kinds_for,
    seeded_plan,
)


def test_spec_matches_occurrence_window():
    spec = FaultSpec(kind=WORKER_CRASH, point="task", occurrence=2, repeat=2)
    assert not spec.matches("cbase", "task", 1)
    assert spec.matches("cbase", "task", 2)
    assert spec.matches("cbase", "task", 3)
    assert not spec.matches("cbase", "task", 4)
    assert not spec.matches("cbase", "kernel", 2)


def test_spec_algorithm_filter():
    spec = FaultSpec(kind=WORKER_CRASH, point="task", algorithm="gbase")
    assert spec.matches("gbase", "task", 1)
    assert not spec.matches("cbase", "task", 1)
    anywhere = FaultSpec(kind=WORKER_CRASH, point="task")
    assert anywhere.matches("cbase", "task", 1)
    assert anywhere.matches("gsh", "task", 1)


def test_spec_validation():
    with pytest.raises(ConfigError):
        FaultSpec(kind="meteor-strike", point="task")
    with pytest.raises(ConfigError):
        FaultSpec(kind=WORKER_CRASH, point="nowhere")
    with pytest.raises(ConfigError):
        FaultSpec(kind=WORKER_CRASH, point="task", occurrence=0)
    with pytest.raises(ConfigError):
        FaultSpec(kind=WORKER_CRASH, point="task", repeat=0)


def test_plan_first_match_order():
    first = FaultSpec(kind=WORKER_CRASH, point="task")
    second = FaultSpec(kind=CAPACITY_OVERFLOW, point="task")
    plan = FaultPlan((first, second))
    assert plan.first_match("cbase", "task", 1) is first
    assert plan.first_match("cbase", "kernel", 1) is None
    assert len(plan) == 2


def test_injection_point_mapping():
    assert injection_point("cbase", WORKER_CRASH) == "task"
    assert injection_point("gbase", KERNEL_ABORT) == "kernel"
    assert injection_point("cbase", KERNEL_ABORT) == "phase"
    assert injection_point("csh", CAPACITY_OVERFLOW) == "detect"
    assert injection_point("gsh", CAPACITY_OVERFLOW) == "split"
    assert injection_point("cbase", CAPACITY_OVERFLOW) == "capacity"
    assert injection_point("gsh", ARTIFACT_CORRUPTION) == "artifact"


def test_kinds_for_restricts_oom_to_gpu():
    assert KERNEL_OOM in kinds_for("gbase")
    assert KERNEL_OOM in kinds_for("gsh")
    assert KERNEL_OOM not in kinds_for("cbase")
    assert KERNEL_OOM not in kinds_for("csh")
    for algorithm in DEFAULT_CHAOS_ALGORITHMS:
        assert set(kinds_for(algorithm)) <= set(FAULT_KINDS)


def test_seeded_plan_deterministic_and_complete():
    plan_a = seeded_plan(42)
    plan_b = seeded_plan(42)
    assert plan_a.specs == plan_b.specs
    # One spec per applicable fault class per algorithm.
    for algorithm in DEFAULT_CHAOS_ALGORITHMS:
        specs = [s for s in plan_a.specs if s.algorithm == algorithm]
        assert sorted(s.kind for s in specs) == sorted(kinds_for(algorithm))
        for spec in specs:
            assert spec.point == injection_point(algorithm, spec.kind)


def test_seeded_plans_differ_across_seeds():
    occurrences = {
        seed: tuple(s.occurrence for s in seeded_plan(seed).specs)
        for seed in range(20)
    }
    assert len(set(occurrences.values())) > 1


def test_slow_spec_round_trips_with_seconds():
    from repro.faults.plan import (
        DEFAULT_SLOW_SECONDS,
        SLOW,
        spec_from_dict,
        spec_to_dict,
    )

    spec = FaultSpec(kind=SLOW, point="slow", occurrence=2, seconds=1.25)
    data = spec_to_dict(spec)
    assert data["seconds"] == 1.25
    assert spec_from_dict(data) == spec
    # seconds rides the wire only for slow specs ...
    crash = spec_to_dict(FaultSpec(kind=WORKER_CRASH, point="task"))
    assert "seconds" not in crash
    # ... and an omitted seconds falls back to the default delay.
    assert spec_from_dict({"kind": SLOW, "point": "slow"}).seconds == \
        DEFAULT_SLOW_SECONDS
    assert "+1.25s" in spec.label()
    assert "s" not in spec_from_dict(crash).label().split("#")[1]


def test_slow_spec_validation():
    from repro.faults.plan import SLOW

    with pytest.raises(ConfigError):
        FaultSpec(kind=SLOW, point="slow", seconds=-0.5)
    FaultSpec(kind=SLOW, point="slow", seconds=0.0)  # zero delay is legal
    assert injection_point("cbase", SLOW) == "slow"


def test_slow_is_excluded_from_pipeline_chaos_sweeps():
    from repro.faults.plan import SLOW

    # The slow point only exists on the serve morsel loop; a pipeline
    # sweep including it would record no injection and fail the
    # exact-recovery contract.
    for algorithm in DEFAULT_CHAOS_ALGORITHMS + ("cbase-npj",):
        assert SLOW not in kinds_for(algorithm)
    assert all(s.kind != SLOW for s in seeded_plan(7).specs)
