"""The bounded-retry engine: pre-fired injection, regrow, exhaustion."""

import pytest

from repro.errors import CapacityError, UnrecoveredFaultError
from repro.exec.counters import OpCounters
from repro.faults.plan import CAPACITY_OVERFLOW, FaultPlan, FaultSpec, WORKER_CRASH
from repro.faults.policy import RecoveryPolicy
from repro.faults.recovery import (
    run_task_with_recovery,
    scale_counters,
)
from repro.faults.scope import FaultScope


def crash_plan(repeat=1, occurrence=1):
    return FaultPlan((FaultSpec(kind=WORKER_CRASH, point="task",
                                occurrence=occurrence, repeat=repeat),))


def test_scale_counters_discards_output():
    counters = OpCounters(hash_ops=100, output_tuples=40, bytes_read=800)
    wasted = scale_counters(counters, 0.5)
    assert wasted.hash_ops == 50
    assert wasted.bytes_read == 400
    # A crashed attempt's output is discarded — no double counting.
    assert wasted.output_tuples == 0


def test_injected_crash_runs_task_exactly_once():
    scope = FaultScope("cbase", plan=crash_plan())
    calls = []

    def run(counters, attempt):
        calls.append(attempt)
        counters.output_tuples += 10
        return "done"

    outcome = run_task_with_recovery(run, scope, points=("task",))
    # The injected fault is consumed before the work executes, so the
    # functional task runs once and its output is counted once.
    assert calls == [1]
    assert outcome.value == "done"
    assert outcome.counters.output_tuples == 10
    assert outcome.retries == 1
    assert all(w.output_tuples == 0 for w in outcome.wasted)
    assert len(outcome.backoffs) == 1 and outcome.backoffs[0] > 0
    assert len(scope.reports) == 1
    report = scope.reports[0]
    assert report.recovered and report.injected
    assert report.kind == WORKER_CRASH and report.retries == 1


def test_organic_capacity_error_regrows():
    scope = FaultScope("cbase", plan=FaultPlan(()))

    def run(counters, attempt):
        counters.hash_ops += 100
        if attempt < 2:
            raise CapacityError("table overflow", capacity=1 << attempt)
        return attempt

    outcome = run_task_with_recovery(run, scope, points=("capacity",))
    assert outcome.value == 2
    assert outcome.retries == 2
    assert len(outcome.wasted) == 2
    report = scope.reports[0]
    assert report.kind == CAPACITY_OVERFLOW
    assert report.action == "regrow"
    assert not report.injected  # organic failure
    assert report.context.get("capacity") == 2  # from the last error


def test_repeat_beyond_budget_raises_typed_error():
    policy = RecoveryPolicy(max_retries=2)
    scope = FaultScope("cbase", plan=crash_plan(repeat=10), policy=policy)

    def run(counters, attempt):  # pragma: no cover - never reached
        raise AssertionError("task must not execute when injection exhausts")

    with pytest.raises(UnrecoveredFaultError) as exc_info:
        run_task_with_recovery(run, scope, points=("task",))
    report = exc_info.value.report
    assert report is not None
    assert not report.recovered
    assert report.retries == policy.max_retries + 1
    assert scope.reports == [report]


def test_organic_exhaustion_raises_with_context():
    policy = RecoveryPolicy(max_retries=1)
    scope = FaultScope("cbase", plan=FaultPlan(()), policy=policy)

    def run(counters, attempt):
        raise CapacityError("still too small", capacity=64, observed=512)

    with pytest.raises(UnrecoveredFaultError) as exc_info:
        run_task_with_recovery(run, scope, points=("capacity",))
    exc = exc_info.value
    assert exc.report is not None and not exc.report.recovered
    assert exc.report.context.get("observed") == 512
    assert exc.context.get("capacity") == 64


def test_backoff_grows_exponentially():
    policy = RecoveryPolicy(backoff_base_seconds=1e-3, backoff_factor=2.0)
    assert policy.backoff_seconds(1) == pytest.approx(1e-3)
    assert policy.backoff_seconds(2) == pytest.approx(2e-3)
    assert policy.backoff_seconds(3) == pytest.approx(4e-3)
