"""Chaos property: every injected fault recovers exactly or fails typed.

The invariant under test is the one ``repro chaos`` enforces in CI: for
every fault class applicable to every algorithm, the faulted run either
completes with output identical to the fault-free baseline (reports and
trace counters consistent), or raises a ReproError subclass that carries
the episode's FailureReport — never a bare traceback, never silently
wrong output.
"""

import pytest

from repro.data.zipf import ZipfWorkload
from repro.faults.chaos import run_chaos
from repro.faults.plan import DEFAULT_CHAOS_ALGORITHMS, kinds_for


@pytest.fixture(scope="module")
def chaos_input():
    # The chaos workload scale: the seeded plans' occurrence windows assume
    # every algorithm reaches >= 2 partition pairs, which needs >= 8192
    # tuples (at 4096 Gbase fits a single partition and task occurrence 2
    # never fires).
    return ZipfWorkload(8192, 8192, theta=1.0, seed=7).generate()


@pytest.mark.parametrize("seed", [0, 42])
def test_full_sweep_recovers_or_fails_typed(chaos_input, seed):
    outcome = run_chaos(chaos_input, seed=seed)
    failures = [case.summary_line() for case in outcome.cases if not case.ok]
    assert outcome.ok, "chaos cases failed:\n" + "\n".join(failures)
    # Every applicable fault class of every algorithm was exercised.
    exercised = {(c.algorithm, c.spec.kind) for c in outcome.cases}
    expected = {(alg, kind)
                for alg in DEFAULT_CHAOS_ALGORITHMS
                for kind in kinds_for(alg)}
    assert exercised == expected
    # Each case recorded at least one injected fault episode.
    for case in outcome.cases:
        assert any(r.injected for r in case.reports), case.summary_line()


def test_sweep_renders_a_summary(chaos_input):
    outcome = run_chaos(chaos_input, seed=1,
                        algorithms=("cbase", "gbase"))
    text = outcome.render()
    assert "seed=1" in text
    assert "cases ok" in text
    assert all(case.spec.label() in text for case in outcome.cases)


def test_chaos_is_deterministic(chaos_input):
    first = run_chaos(chaos_input, seed=3, algorithms=("cbase",))
    second = run_chaos(chaos_input, seed=3, algorithms=("cbase",))
    assert [c.outcome for c in first.cases] == \
           [c.outcome for c in second.cases]
    assert [len(c.reports) for c in first.cases] == \
           [len(c.reports) for c in second.cases]
