"""The fsync'd checkpoint ledger: round trips, torn tails, bad headers."""

from __future__ import annotations

import pytest

from repro.errors import SpillError
from repro.store.checkpoint import LEDGER_NAME, CheckpointLedger


def _ledger(tmp_path):
    return CheckpointLedger(tmp_path / LEDGER_NAME)


def test_header_and_pairs_round_trip(tmp_path):
    ledger = _ledger(tmp_path)
    ledger.write_header({"algorithm": "cbase"})
    ledger.append_pair("join", 3, 10, 0xAB)
    ledger.append_pair("nm-join", 0, 7, 0xCD)
    header, completed = _ledger(tmp_path).load()
    assert header["algorithm"] == "cbase"
    assert completed == {("join", 3): (10, 0xAB), ("nm-join", 0): (7, 0xCD)}


def test_rewriting_header_truncates(tmp_path):
    ledger = _ledger(tmp_path)
    ledger.write_header({"run": 1})
    ledger.append_pair("join", 1, 1, 1)
    ledger.write_header({"run": 2})
    header, completed = _ledger(tmp_path).load()
    assert header["run"] == 2
    assert completed == {}


def test_torn_tail_is_discarded_with_a_warning(tmp_path):
    ledger = _ledger(tmp_path)
    ledger.write_header({})
    ledger.append_pair("join", 1, 5, 9)
    with open(ledger.path, "a", encoding="utf-8") as fh:
        fh.write('{"crc": 0, "payload": {"type": "pair"')  # no newline
    with pytest.warns(RuntimeWarning, match="torn or corrupted"):
        _header, completed = _ledger(tmp_path).load()
    assert completed == {("join", 1): (5, 9)}


def test_corrupt_middle_line_drops_the_rest(tmp_path):
    ledger = _ledger(tmp_path)
    ledger.write_header({})
    ledger.append_pair("join", 1, 5, 9)
    lines = ledger.path.read_text(encoding="utf-8").splitlines(keepends=True)
    damaged = lines[1].replace('"count":5', '"count":6')
    assert damaged != lines[1]
    ledger.path.write_text(lines[0] + damaged + lines[1], encoding="utf-8")
    with pytest.warns(RuntimeWarning):
        _header, completed = _ledger(tmp_path).load()
    # The damaged line AND the intact one after it are gone: a line
    # following a torn one cannot have been fsynced in order.
    assert completed == {}


def test_missing_ledger_and_missing_header_are_typed(tmp_path):
    with pytest.raises(SpillError):
        _ledger(tmp_path).load()
    # A file whose only intact content is pairs (no header) is refused.
    ledger = _ledger(tmp_path)
    ledger.write_header({})
    ledger.append_pair("join", 1, 1, 1)
    lines = ledger.path.read_text(encoding="utf-8").splitlines(keepends=True)
    ledger.path.write_text(lines[1], encoding="utf-8")
    with pytest.raises(SpillError):
        _ledger(tmp_path).load()
