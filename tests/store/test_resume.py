"""Run-state persistence and the checkpoint/resume driver."""

from __future__ import annotations

import json

import pytest

from repro.api import make_join
from repro.data.zipf import ZipfWorkload
from repro.errors import SpillError
from repro.exec.differential import compare_results
from repro.store.resume import (
    RUN_STATE_NAME,
    load_run_state,
    resume_run,
    write_run_state,
)
from repro.store.spill import SpillSession, open_spill_session, spill_session

WORKLOAD = {"kind": "zipf", "n_r": 4096, "n_s": 4096,
            "theta": 1.0, "seed": 42}


def _state(budget):
    return {"algorithm": "cbase", "backend": "vector",
            "budget_bytes": budget, "workload": dict(WORKLOAD)}


def _workload():
    return ZipfWorkload(4096, 4096, theta=1.0, seed=42).generate()


def _budget():
    return max(12 * 2 * 4096 // 4, 1)


def test_run_state_round_trip(tmp_path):
    write_run_state(tmp_path, _state(1234))
    state = load_run_state(tmp_path)
    assert state["algorithm"] == "cbase"
    assert state["budget_bytes"] == 1234
    assert state["state_version"] == 1


def test_run_state_typed_errors(tmp_path):
    with pytest.raises(SpillError):
        load_run_state(tmp_path)  # missing entirely
    (tmp_path / RUN_STATE_NAME).write_text("{not json", encoding="utf-8")
    with pytest.raises(SpillError):
        load_run_state(tmp_path)
    (tmp_path / RUN_STATE_NAME).write_text(
        json.dumps({"state_version": 99}), encoding="utf-8")
    with pytest.raises(SpillError):
        load_run_state(tmp_path)
    write_run_state(tmp_path, {"algorithm": "cbase"})  # missing keys
    with pytest.raises(SpillError):
        load_run_state(tmp_path)


def test_unknown_workload_kind_is_typed(tmp_path):
    write_run_state(tmp_path, {"algorithm": "cbase", "backend": "vector",
                               "workload": {"kind": "ouija"}})
    with pytest.raises(SpillError):
        resume_run(tmp_path)


def test_resume_of_a_completed_run_folds_every_pair(tmp_path):
    budget = _budget()
    workload = _workload()
    reference = make_join("cbase").run(workload)
    write_run_state(tmp_path, _state(budget))
    with open_spill_session(directory=tmp_path, budget_bytes=budget,
                            header={"algorithm": "cbase"}) as session:
        first = make_join("cbase").run(workload)
    assert session.spilled_partitions > 0
    assert compare_results(reference, first) == []
    resumed = resume_run(tmp_path)
    # Every pair folds straight from the ledger; no join work re-runs.
    assert resumed.matches(reference)
    assert resumed.meta["resumed_pairs"] > 0


def test_resume_before_any_spill_completes_from_nothing(tmp_path):
    # Crash before the first manifest/ledger write: the directory holds
    # only run.json.  Resume must run the whole join, not raise.
    budget = _budget()
    write_run_state(tmp_path, _state(budget))
    reference = make_join("cbase").run(_workload())
    resumed = resume_run(tmp_path)
    assert resumed.matches(reference)
    assert resumed.meta["resumed_pairs"] == 0


def test_resume_drops_rotted_chunks_and_respills(tmp_path):
    budget = _budget()
    workload = _workload()
    reference = make_join("cbase").run(workload)
    write_run_state(tmp_path, _state(budget))
    with open_spill_session(directory=tmp_path, budget_bytes=budget,
                            header={}):
        make_join("cbase").run(workload)
    victim = next(iter(tmp_path.glob("*.chunk")))
    data = bytearray(victim.read_bytes())
    data[0] ^= 0xFF
    victim.write_bytes(bytes(data))
    resumed = resume_run(tmp_path)
    assert resumed.matches(reference)
    assert resumed.meta["spill_invalid_chunks"] >= 1


def test_partial_ledger_skips_only_recorded_pairs(tmp_path):
    budget = _budget()
    workload = _workload()
    reference = make_join("cbase").run(workload)
    write_run_state(tmp_path, _state(budget))
    with open_spill_session(directory=tmp_path, budget_bytes=budget,
                            header={}) as session:
        make_join("cbase").run(workload)
    total_pairs = len(session.completed)
    assert total_pairs > 1
    # Truncate the ledger to header + first pair: simulates a crash
    # after one checkpointed pair.
    ledger_path = session.ledger.path
    lines = ledger_path.read_text(encoding="utf-8").splitlines(
        keepends=True)
    ledger_path.write_text("".join(lines[:2]), encoding="utf-8")
    resumed = resume_run(tmp_path)
    assert resumed.matches(reference)
    assert resumed.meta["resumed_pairs"] == 1


def test_resume_session_tolerates_missing_ledger(tmp_path):
    session = SpillSession(tmp_path, budget_bytes=1024, resume=True)
    assert session.completed == {}
    with spill_session(session):
        pass  # installable without error
