"""ChunkStore: durability, validation, codecs, and the fault ladders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, SpillError
from repro.faults.plan import (
    CORRUPT_CHUNK,
    ENOSPC,
    IO_SLOW,
    STORE_READ_POINT,
    STORE_WRITE_POINT,
    TORN_WRITE,
    FaultPlan,
    FaultSpec,
)
from repro.faults.scope import fault_scope
from repro.store.chunks import (
    ChunkStore,
    ChunkWriteExhausted,
    MANIFEST_NAME,
    resolve_codec,
)


def _column(n=257, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**32, size=n, dtype=np.uint32)


@pytest.mark.parametrize("codec", ["raw", "zlib"])
def test_write_read_round_trip(tmp_path, codec):
    store = ChunkStore(tmp_path, codec=codec)
    arr = _column()
    info = store.write_array("col-a", arr)
    assert info.length == arr.size and info.dtype == "uint32"
    back = store.read_array("col-a")
    np.testing.assert_array_equal(np.asarray(back), arr)
    assert not back.flags.writeable


def test_zstd_codec_is_gated_not_importerror():
    try:
        import zstandard  # noqa: F401
    except ImportError:
        with pytest.raises(ConfigError) as excinfo:
            resolve_codec("zstd")
        assert "zstandard" in str(excinfo.value)
    else:
        assert resolve_codec("zstd") == "zstd"


def test_unknown_codec_is_a_config_error():
    with pytest.raises(ConfigError):
        resolve_codec("lz77")


def test_manifest_round_trip_and_version_gate(tmp_path):
    store = ChunkStore(tmp_path)
    store.write_array("c0", _column())
    store.write_manifest(extra={"label": "t"})
    fresh = ChunkStore(tmp_path)
    assert fresh.load_manifest() == {"label": "t"}
    assert "c0" in fresh.chunks
    # A future manifest version is refused, typed.
    text = (tmp_path / MANIFEST_NAME).read_text()
    (tmp_path / MANIFEST_NAME).write_text(
        text.replace('"manifest_version": 1', '"manifest_version": 99'))
    with pytest.raises(SpillError):
        ChunkStore(tmp_path).load_manifest()


def test_missing_manifest_typed_unless_missing_ok(tmp_path):
    store = ChunkStore(tmp_path)
    with pytest.raises(SpillError):
        store.load_manifest()
    assert store.load_manifest(missing_ok=True) == {}
    assert store.chunks == {}


def test_on_disk_rot_is_dropped_and_unreadable(tmp_path):
    store = ChunkStore(tmp_path)
    store.write_array("c0", _column())
    assert store.validate_chunk("c0")
    path = store.chunk_path("c0")
    data = bytearray(path.read_bytes())
    data[0] ^= 0xFF
    path.write_bytes(bytes(data))
    assert not store.validate_chunk("c0")
    with pytest.raises(SpillError):
        store.read_array("c0")
    assert store.drop_invalid_chunks() == 1
    assert "c0" not in store.chunks


def test_reuse_skips_rewrite_when_chunk_validates(tmp_path):
    store = ChunkStore(tmp_path)
    arr = _column()
    first = store.write_array("c0", arr)
    mtime = store.chunk_path("c0").stat().st_mtime_ns
    again = store.write_array("c0", arr)
    assert again is first
    assert store.chunk_path("c0").stat().st_mtime_ns == mtime


def test_unknown_chunk_read_is_typed(tmp_path):
    with pytest.raises(SpillError):
        ChunkStore(tmp_path).read_array("ghost")


@pytest.mark.parametrize("kind", [TORN_WRITE, ENOSPC])
def test_single_write_fault_recovers_with_report(tmp_path, kind):
    plan = FaultPlan((FaultSpec(kind=kind, point=STORE_WRITE_POINT),))
    arr = _column()
    with fault_scope("cbase", plan=plan) as scope:
        store = ChunkStore(tmp_path)
        store.write_array("c0", arr)
    np.testing.assert_array_equal(np.asarray(store.read_array("c0")), arr)
    assert len(scope.reports) == 1
    report = scope.reports[0]
    assert report.recovered and report.injected
    assert report.point == STORE_WRITE_POINT


def test_write_exhaustion_raises_internal_signal(tmp_path):
    plan = FaultPlan((FaultSpec(kind=TORN_WRITE, point=STORE_WRITE_POINT,
                                repeat=99),))
    with fault_scope("cbase", plan=plan):
        store = ChunkStore(tmp_path)
        with pytest.raises(ChunkWriteExhausted) as excinfo:
            store.write_array("c0", _column())
    assert excinfo.value.kind == TORN_WRITE
    assert excinfo.value.injected


def test_single_corrupt_read_recovers(tmp_path):
    store = ChunkStore(tmp_path)
    arr = _column()
    store.write_array("c0", arr)
    plan = FaultPlan((FaultSpec(kind=CORRUPT_CHUNK,
                                point=STORE_READ_POINT),))
    with fault_scope("cbase", plan=plan) as scope:
        back = store.read_array("c0")
    np.testing.assert_array_equal(np.asarray(back), arr)
    # The chunk file itself stays intact — corruption was simulated on
    # the loaded copy only.
    assert store.validate_chunk("c0")
    assert any(r.recovered and r.point == STORE_READ_POINT
               for r in scope.reports)


def test_read_exhaustion_is_a_typed_spill_error(tmp_path):
    store = ChunkStore(tmp_path)
    store.write_array("c0", _column())
    plan = FaultPlan((FaultSpec(kind=CORRUPT_CHUNK, point=STORE_READ_POINT,
                                repeat=99),))
    with fault_scope("cbase", plan=plan):
        with pytest.raises(SpillError) as excinfo:
            store.read_array("c0")
    assert excinfo.value.report is not None
    assert not excinfo.value.report.recovered


def test_io_slow_charges_the_ambient_deadline(tmp_path):
    from repro.exec.cancel import Deadline, cancel_scope

    store = ChunkStore(tmp_path)
    store.write_array("c0", _column())
    plan = FaultPlan((FaultSpec(kind=IO_SLOW, point=STORE_READ_POINT,
                                seconds=0.5),))
    deadline = Deadline(10_000.0, clock=lambda: 0.0)
    with fault_scope("cbase", plan=plan):
        with cancel_scope(deadline=deadline):
            store.read_array("c0")
    assert deadline.charged_ms == pytest.approx(500.0)
