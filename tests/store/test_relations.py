"""The on-disk relation format: streaming writes, lazy paging reads,
fd lifecycle, codecs (including the gated zstd path), and counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.stream import stream_zipf_input
from repro.errors import ConfigError, SpillError
from repro.faults.plan import (
    CORRUPT_CHUNK,
    STORE_READ_POINT,
    FaultPlan,
    FaultSpec,
)
from repro.faults.scope import fault_scope
from repro.obs import tracing
from repro.store.chunks import ChunkStore
from repro.store.relations import (
    MappedRelation,
    RelationStreamWriter,
    SegmentedColumn,
    dataset_bytes,
    open_join_input,
    open_relation_store,
    resolve_page_cache_segments,
    resolve_stream_chunk_tuples,
)
from repro.types import KEY_DTYPE, PAYLOAD_DTYPE, TUPLE_BYTES


def _has_zstandard() -> bool:
    try:
        import zstandard  # noqa: F401
        return True
    except ImportError:
        return False


def _write_input(directory, n_r=300, n_s=1000, codec=None, chunk=128,
                 seed=5):
    """A small two-relation store written in several chunks per column."""
    rng = np.random.default_rng(seed)
    r_keys = rng.integers(0, 64, size=n_r, dtype=np.uint64).astype(KEY_DTYPE)
    r_pays = rng.integers(0, 2**32, size=n_r,
                          dtype=np.uint64).astype(PAYLOAD_DTYPE)
    s_keys = rng.integers(0, 64, size=n_s, dtype=np.uint64).astype(KEY_DTYPE)
    s_pays = rng.integers(0, 2**32, size=n_s,
                          dtype=np.uint64).astype(PAYLOAD_DTYPE)
    writer = RelationStreamWriter(directory, codec=codec)
    for role, name, keys, pays in (("r", "R", r_keys, r_pays),
                                   ("s", "S", s_keys, s_pays)):
        kw = writer.column(role, name, "keys", KEY_DTYPE)
        pw = writer.column(role, name, "payloads", PAYLOAD_DTYPE)
        for a in range(0, len(keys), chunk):
            kw.append(keys[a:a + chunk])
            pw.append(pays[a:a + chunk])
    writer.finish(meta={"label": "test"})
    return (r_keys, r_pays, s_keys, s_pays)


@pytest.mark.parametrize("codec", ["raw", "zlib"])
def test_round_trip_matches_streamed_values(tmp_path, codec):
    r_keys, r_pays, s_keys, s_pays = _write_input(tmp_path, codec=codec)
    join_input, store = open_join_input(tmp_path)
    with store:
        assert join_input.r.is_lazy and join_input.s.is_lazy
        assert join_input.meta["label"] == "test"
        np.testing.assert_array_equal(join_input.r.keys, r_keys)
        np.testing.assert_array_equal(join_input.r.payloads, r_pays)
        np.testing.assert_array_equal(join_input.s.keys, s_keys)
        np.testing.assert_array_equal(join_input.s.payloads, s_pays)
        assert len(join_input.s) == len(s_keys)
        assert join_input.s.nbytes == len(s_keys) * TUPLE_BYTES
    assert dataset_bytes(tmp_path) == (len(r_keys) + len(s_keys)) \
        * TUPLE_BYTES


def test_manifest_codec_governs_decoding_not_the_opener(tmp_path):
    """Readers open with codec='raw'; the manifest's codec wins."""
    _, _, s_keys, _ = _write_input(tmp_path, codec="zlib")
    store, extra = open_relation_store(tmp_path)
    with store:
        assert store.codec == "zlib"
        col = SegmentedColumn(
            store, extra["relations"]["s"]["columns"]["keys"]["chunks"])
        np.testing.assert_array_equal(col.materialize(), s_keys)


def test_gather_pages_only_covered_segments_with_lru(tmp_path):
    _, _, s_keys, _ = _write_input(tmp_path, chunk=128)
    store, extra = open_relation_store(tmp_path)
    with store:
        col = SegmentedColumn(
            store, extra["relations"]["s"]["columns"]["keys"]["chunks"],
            cache_segments=2)
        assert col.n_segments == 8  # 1000 tuples / 128 per chunk
        np.testing.assert_array_equal(col.gather(0, 100), s_keys[:100])
        assert col.segment_loads == 1
        np.testing.assert_array_equal(col.gather(10, 120), s_keys[10:120])
        assert col.segment_loads == 1 and col.cache_hits == 1
        # A cross-segment gather pages in exactly the covered segments.
        np.testing.assert_array_equal(col.gather(100, 300), s_keys[100:300])
        assert col.segment_loads == 3
        # The LRU never holds more than cache_segments decoded arrays.
        col.materialize()
        assert len(col._cache) <= 2
        np.testing.assert_array_equal(col[900], s_keys[900])
        np.testing.assert_array_equal(col[5:50], s_keys[5:50])
        np.testing.assert_array_equal(col[::2], s_keys[::2])


def test_raw_within_segment_slice_is_zero_copy(tmp_path):
    _write_input(tmp_path, codec="raw", chunk=256)
    join_input, store = open_join_input(tmp_path)
    with store:
        keys, _ = join_input.s.morsel(10, 200)
        root = keys
        while getattr(root, "base", None) is not None \
                and isinstance(root.base, np.ndarray):
            root = root.base
        assert isinstance(root, np.memmap), (
            "a within-segment raw morsel must view the file mapping, "
            "not copy it")


def test_mapped_relation_morsels_match_materialized(tmp_path):
    _, _, s_keys, s_pays = _write_input(tmp_path, codec="zlib", chunk=100)
    join_input, store = open_join_input(tmp_path)
    with store:
        s = join_input.s
        got_k, got_p = [], []
        for a, b, keys, pays in s.iter_morsels():
            assert b - a == len(keys) == len(pays)
            got_k.append(keys)
            got_p.append(pays)
        np.testing.assert_array_equal(np.concatenate(got_k), s_keys)
        np.testing.assert_array_equal(np.concatenate(got_p), s_pays)
        rel = s.to_relation()
        np.testing.assert_array_equal(rel.keys, s_keys)
        assert rel.name == s.name


def test_paging_and_materialization_counters_flow_to_metrics(tmp_path):
    _write_input(tmp_path, codec="zlib", chunk=100)
    with tracing("oocore") as tracer:
        join_input, store = open_join_input(tmp_path)
        with store:
            join_input.s.keys_column.materialize()
    metrics = tracer.record().metrics
    assert metrics["store.pages_in"]["value"] >= 10
    assert metrics["store.bytes_paged_in"]["value"] > 0
    assert metrics["store.column_materializations"]["value"] == 1


def _fds_into(directory) -> int:
    """Open file descriptors of this process pointing into directory."""
    import os
    prefix = str(directory)
    count = 0
    for fd in os.listdir("/proc/self/fd"):
        try:
            if os.readlink(f"/proc/self/fd/{fd}").startswith(prefix):
                count += 1
        except OSError:
            continue
    return count


def test_chunk_store_close_releases_raw_memmap_fds(tmp_path):
    """Regression: every raw-codec read holds one file descriptor until
    its np.memmap is garbage collected, so a store whose views are
    retained (a segment cache, a long-lived session) leaked fds for the
    store's whole life.  close() must release them deterministically."""
    store = ChunkStore(tmp_path, codec="raw")
    arr = np.arange(500, dtype=np.uint32)
    for i in range(4):
        store.write_array(f"c{i}", arr)
    baseline = _fds_into(tmp_path)
    cache = [store.read_array(f"c{i}") for i in range(4)]
    assert all(isinstance(v, np.memmap) for v in cache)
    assert _fds_into(tmp_path) == baseline + 4
    released = store.release_mappings()
    assert released == 4
    assert _fds_into(tmp_path) == baseline
    # Released views are invalid (the mmap contract) — drop, don't read.
    del cache
    # Idempotent: closing again is a no-op, not an error.
    store.close()
    store.close()


def test_store_close_releases_retained_segment_cache_fds(tmp_path):
    """The LRU segment cache retains raw mappings; closing the store
    must still release their descriptors (and publish the counter)."""
    _write_input(tmp_path, codec="raw", chunk=128)
    with tracing("fds") as tracer:
        join_input, store = open_join_input(tmp_path)
        join_input.s.keys  # fault every segment in as memmaps
        baseline = _fds_into(tmp_path)
        assert baseline > 0  # the cache is holding mappings open
        store.close()
        assert _fds_into(tmp_path) == 0
        # Materialized copies survive the close; only raw views die.
        assert len(join_input.s.keys) == 1000
    metrics = tracer.record().metrics
    assert metrics["store.mappings_released"]["value"] >= 1


def test_wrong_format_and_version_are_typed(tmp_path):
    plain = ChunkStore(tmp_path / "spill")
    plain.write_array("c0", np.arange(10, dtype=np.uint32))
    plain.write_manifest(extra={"format": "spill"})
    with pytest.raises(SpillError, match="not a 'relations' manifest"):
        open_relation_store(tmp_path / "spill")

    stream_zipf_input(tmp_path / "rel", 64, 64, 0.5, seed=1)
    store, extra = open_relation_store(tmp_path / "rel")
    store.close()
    extra["format_version"] = 99
    bumped = ChunkStore(tmp_path / "rel")
    bumped.load_manifest()
    bumped.write_manifest(dict(extra, format_version=99))
    with pytest.raises(SpillError, match="version 99"):
        open_relation_store(tmp_path / "rel")


def test_writer_validates_roles_and_column_lengths(tmp_path):
    writer = RelationStreamWriter(tmp_path)
    writer.column("r", "R", "keys", KEY_DTYPE).append(
        np.arange(8, dtype=KEY_DTYPE))
    with pytest.raises(SpillError, match="already registered"):
        writer.column("r", "OTHER", "keys", KEY_DTYPE)
    with pytest.raises(SpillError, match="missing columns"):
        writer.finish()
    writer.column("r", "R", "payloads", PAYLOAD_DTYPE).append(
        np.arange(5, dtype=PAYLOAD_DTYPE))
    with pytest.raises(SpillError, match="unequal column lengths"):
        writer.finish()


def test_segmented_column_rejects_unknown_chunks_and_mixed_dtypes(tmp_path):
    store = ChunkStore(tmp_path)
    store.write_array("a", np.arange(4, dtype=np.uint32))
    store.write_array("b", np.arange(4, dtype=np.uint64))
    with pytest.raises(SpillError, match="unknown chunk"):
        SegmentedColumn(store, ["a", "ghost"])
    with pytest.raises(SpillError, match="mixes dtypes"):
        SegmentedColumn(store, ["a", "b"])
    with pytest.raises(SpillError, match="no chunks"):
        SegmentedColumn(store, [])


def test_mapped_relation_rejects_ragged_columns(tmp_path):
    store = ChunkStore(tmp_path)
    store.write_array("k", np.arange(4, dtype=KEY_DTYPE))
    store.write_array("p", np.arange(6, dtype=PAYLOAD_DTYPE))
    with pytest.raises(SpillError, match="4 keys vs 6 payloads"):
        MappedRelation("X", SegmentedColumn(store, ["k"]),
                       SegmentedColumn(store, ["p"]))


def test_stream_knobs_resolve_arg_env_default(monkeypatch):
    assert resolve_stream_chunk_tuples(64) == 64
    monkeypatch.setenv("REPRO_STREAM_CHUNK_TUPLES", "123")
    assert resolve_stream_chunk_tuples() == 123
    monkeypatch.setenv("REPRO_STREAM_CHUNK_TUPLES", "nope")
    with pytest.raises(ConfigError):
        resolve_stream_chunk_tuples()
    with pytest.raises(ConfigError):
        resolve_stream_chunk_tuples(0)
    monkeypatch.setenv("REPRO_PAGE_CACHE_SEGMENTS", "2")
    assert resolve_page_cache_segments() == 2
    with pytest.raises(ConfigError):
        resolve_page_cache_segments(-1)
    monkeypatch.setenv("REPRO_PAGE_CACHE_SEGMENTS", "zero")
    with pytest.raises(ConfigError):
        resolve_page_cache_segments()


# ------------------------------------------------------------- zstd path


def test_zstd_relation_store_is_gated_when_absent(tmp_path, monkeypatch):
    """Without the optional zstandard package, asking for the codec is a
    typed ConfigError naming it — never a bare ImportError."""
    import builtins

    real_import = builtins.__import__

    def no_zstd(name, *args, **kwargs):
        if name == "zstandard":
            raise ImportError("No module named 'zstandard'")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_zstd)
    with pytest.raises(ConfigError, match="zstandard"):
        RelationStreamWriter(tmp_path, codec="zstd")


@pytest.mark.skipif(not _has_zstandard(),
                    reason="optional zstandard package not installed")
def test_zstd_round_trip_with_trained_dictionary(tmp_path):
    r_keys, r_pays, s_keys, s_pays = _write_input(tmp_path, codec="zstd")
    store = ChunkStore(tmp_path, codec="zstd")
    store.load_manifest()
    # The stream writer trains one dictionary per column family from the
    # first chunk; the manifest round-trips them.
    assert store.dictionary_for("S-keys")
    store.close()
    join_input, reader = open_join_input(tmp_path)
    with reader:
        np.testing.assert_array_equal(join_input.r.keys, r_keys)
        np.testing.assert_array_equal(join_input.r.payloads, r_pays)
        np.testing.assert_array_equal(join_input.s.keys, s_keys)
        np.testing.assert_array_equal(join_input.s.payloads, s_pays)


@pytest.mark.skipif(not _has_zstandard(),
                    reason="optional zstandard package not installed")
def test_zstd_corrupt_chunk_recovers_through_the_ladder(tmp_path):
    """A seeded corrupt-chunk read under zstd recovers via the CRC
    validation + retry ladder exactly like the raw/zlib codecs."""
    _write_input(tmp_path, codec="zstd", n_s=400, chunk=100)
    join_input, store = open_join_input(tmp_path)
    plan = FaultPlan([FaultSpec(kind=CORRUPT_CHUNK, point=STORE_READ_POINT,
                                at=0)])
    with store, fault_scope(plan) as scope:
        keys = join_input.s.keys
        assert len(keys) == 400
    assert scope.reports and scope.reports[0].recovered


@pytest.mark.skipif(not _has_zstandard(),
                    reason="optional zstandard package not installed")
def test_zstd_streamed_input_joins_bit_identical_to_raw(tmp_path):
    from repro.api import make_join

    stream_zipf_input(tmp_path / "raw", 256, 2048, 1.0, seed=9,
                      codec="raw", chunk_tuples=512)
    stream_zipf_input(tmp_path / "zstd", 256, 2048, 1.0, seed=9,
                      codec="zstd", chunk_tuples=512)
    results = []
    for sub in ("raw", "zstd"):
        join_input, store = open_join_input(tmp_path / sub)
        with store:
            results.append(make_join("cbase-npj").run(join_input))
    assert results[0].output_count == results[1].output_count
    assert results[0].output_checksum == results[1].output_checksum
