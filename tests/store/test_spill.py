"""The spill session: budget gate, bit-identity, degrade/strict ladder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import make_join
from repro.data.zipf import ZipfWorkload
from repro.errors import ConfigError, SpillError
from repro.exec.backend import BACKENDS, use_backend
from repro.exec.differential import compare_results, spill_differential
from repro.faults.plan import (
    STORE_WRITE_POINT,
    TORN_WRITE,
    FaultPlan,
    FaultSpec,
    SPILL_ALGORITHM_NAMES,
    seeded_spill_plan,
)
from repro.faults.scope import activate_plan
from repro.store.spill import (
    MEMORY_BUDGET_ENV,
    SpillSession,
    memory_budget_from_env,
    open_spill_session,
)


@pytest.fixture
def workload():
    return ZipfWorkload(4096, 4096, theta=1.0, seed=42).generate()


def _budget(join_input):
    total = 12 * (len(join_input.r) + len(join_input.s))
    return max(total // 4, 1)


# ------------------------------------------------------------- env gate


def test_budget_env_parsing(monkeypatch):
    monkeypatch.delenv(MEMORY_BUDGET_ENV, raising=False)
    assert memory_budget_from_env() is None
    monkeypatch.setenv(MEMORY_BUDGET_ENV, "0")
    assert memory_budget_from_env() is None  # 0 disables spilling
    monkeypatch.setenv(MEMORY_BUDGET_ENV, "4096")
    assert memory_budget_from_env() == 4096
    monkeypatch.setenv(MEMORY_BUDGET_ENV, "lots")
    with pytest.raises(ConfigError):
        memory_budget_from_env()
    monkeypatch.setenv(MEMORY_BUDGET_ENV, "-1")
    with pytest.raises(ConfigError):
        memory_budget_from_env()


def test_open_session_yields_none_without_budget(monkeypatch):
    monkeypatch.delenv(MEMORY_BUDGET_ENV, raising=False)
    with open_spill_session() as session:
        assert session is None


def test_open_session_reads_budget_from_env(monkeypatch, tmp_path):
    monkeypatch.setenv(MEMORY_BUDGET_ENV, "8192")
    with open_spill_session(directory=tmp_path) as session:
        assert session is not None
        assert session.budget_bytes == 8192


# --------------------------------------------------------- bit identity


@pytest.mark.parametrize("algorithm", SPILL_ALGORITHM_NAMES)
def test_spilled_run_is_bit_identical_to_in_ram(tmp_path, workload,
                                                algorithm):
    reference = make_join(algorithm).run(workload)
    budget = _budget(workload)
    with open_spill_session(directory=tmp_path, budget_bytes=budget,
                            chunk_bytes=max(budget // 2, 4096)) as session:
        spilled = make_join(algorithm).run(workload)
    assert session.spilled_partitions > 0
    assert spilled.meta["spilled_partitions"] == session.spilled_partitions
    assert compare_results(reference, spilled) == []


@pytest.mark.parametrize("backend", BACKENDS)
def test_spilled_run_bit_identical_on_every_backend(workload, backend):
    reference = make_join("cbase").run(workload)
    budget = _budget(workload)
    with use_backend(backend):
        with open_spill_session(budget_bytes=budget,
                                chunk_bytes=max(budget // 2, 4096)):
            spilled = make_join("cbase").run(workload)
    assert compare_results(reference, spilled) == []


def test_spill_differential_grid_is_clean():
    reports = spill_differential(n=1024, seed=42)
    bad = [r for r in reports if not r.ok]
    assert not bad, "\n".join(m for r in bad for m in r.mismatches)


def test_spilled_run_under_seeded_faults_still_matches(workload):
    reference = make_join("cbase").run(workload)
    budget = _budget(workload)
    plan = seeded_spill_plan(11, algorithms=("cbase",))
    with activate_plan(plan):
        with open_spill_session(budget_bytes=budget,
                                chunk_bytes=max(budget // 2, 4096)):
            result = make_join("cbase").run(workload)
    assert result.matches(reference)
    assert any(r.injected for r in result.faults)


def test_generous_budget_never_engages(tmp_path, workload):
    reference = make_join("cbase").run(workload)
    with open_spill_session(directory=tmp_path,
                            budget_bytes=1 << 30) as session:
        result = make_join("cbase").run(workload)
    assert session.spilled_partitions == 0
    assert result.meta["spilled_partitions"] == 0
    assert compare_results(reference, result) == []


# ------------------------------------------------------ recovery ladder


def _exhausting_plan():
    return FaultPlan((FaultSpec(kind=TORN_WRITE, point=STORE_WRITE_POINT,
                                repeat=99),))


def test_write_exhaustion_degrades_to_ram_by_default(workload):
    reference = make_join("cbase").run(workload)
    budget = _budget(workload)
    with activate_plan(_exhausting_plan()):
        with open_spill_session(budget_bytes=budget) as session:
            result = make_join("cbase").run(workload)
    assert session.degraded_chunks > 0
    assert result.meta["spill_degraded"] == session.degraded_chunks
    assert result.matches(reference)
    assert any(r.action == "degrade:ram" and r.recovered
               for r in result.faults)


def test_write_exhaustion_under_strict_budget_is_typed(workload):
    budget = _budget(workload)
    with activate_plan(_exhausting_plan()):
        with open_spill_session(budget_bytes=budget, strict=True):
            with pytest.raises(SpillError) as excinfo:
                make_join("cbase").run(workload)
    assert excinfo.value.report is not None
    assert not excinfo.value.report.recovered


# --------------------------------------------------------- session misc


def test_fanout_mismatch_is_typed(tmp_path):
    from repro.cpu.partition import PartitionedRelation

    def fake(fanout, n=0):
        return PartitionedRelation(
            keys=np.empty(n, dtype=np.uint32),
            payloads=np.empty(n, dtype=np.uint32),
            offsets=np.zeros(fanout + 1, dtype=np.int64),
            hashes=np.empty(n, dtype=np.uint64),
        )

    session = SpillSession(tmp_path, budget_bytes=1)
    with pytest.raises(SpillError):
        session.spill_pair(fake(4), fake(8), label="t")


def _synthetic(sizes):
    from repro.cpu.partition import PartitionedRelation

    sizes = np.asarray(sizes, dtype=np.int64)
    n = int(sizes.sum())
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    offsets[1:] = np.cumsum(sizes)
    return PartitionedRelation(
        keys=np.arange(n, dtype=np.uint32),
        payloads=np.arange(n, dtype=np.uint32),
        offsets=offsets,
        hashes=np.arange(n, dtype=np.uint64),
    )


def test_selection_is_deterministic_and_largest_first(tmp_path):
    sizes = [100, 5, 50, 0, 200, 17, 60, 3]
    part_r = _synthetic(sizes)
    part_s = _synthetic(sizes)
    # 16 bytes/tuple/side -> 32 bytes per pair tuple; total 13920 bytes.
    session_a = SpillSession(tmp_path / "a", budget_bytes=4000)
    session_b = SpillSession(tmp_path / "b", budget_bytes=4000)
    ids_a = session_a._select_pairs(part_r, part_s)
    ids_b = session_b._select_pairs(part_r, part_s)
    assert ids_a == ids_b and ids_a
    # Largest-first: 200, then 100, then 60 gets resident bytes under
    # budget (13920 - 6400 - 3200 - 1920 = 2400 <= 4000).
    assert ids_a == [0, 4, 6]
    # Empty pairs never spill, even under an impossible budget.
    ids_tiny = SpillSession(tmp_path / "c",
                            budget_bytes=1)._select_pairs(part_r, part_s)
    assert 3 not in ids_tiny
