"""Every ``repro chaos`` mode must exit nonzero when a scenario fails.

CI's chaos jobs gate on the process exit code alone; a harness that
prints FAILED but returns 0 would go green.  These tests pin the
contract for all three modes — pipeline, --serve, and --spill — by
stubbing the harnesses at the CLI boundary.
"""

from __future__ import annotations

import repro.cli as cli


class _Outcome:
    def __init__(self, ok):
        self.ok = ok
        self.n_failed = 0 if ok else 2

    def render(self):
        return "stub chaos outcome"


def test_pipeline_chaos_failure_exits_nonzero(monkeypatch):
    monkeypatch.setattr(cli, "run_chaos",
                        lambda *a, **k: _Outcome(ok=False))
    assert cli.main(["chaos", "--tuples", "64"]) == 1
    monkeypatch.setattr(cli, "run_chaos",
                        lambda *a, **k: _Outcome(ok=True))
    assert cli.main(["chaos", "--tuples", "64"]) == 0


def test_serve_chaos_exit_code_passes_through(monkeypatch):
    calls = {}

    def fake(**kwargs):
        calls.update(kwargs)
        return 1

    monkeypatch.setattr(cli, "run_serve_chaos", lambda *a, **k: fake(**k))
    assert cli.main(["chaos", "--serve", "--tuples", "64"]) == 1
    monkeypatch.setattr(cli, "run_serve_chaos", lambda *a, **k: 0)
    assert cli.main(["chaos", "--serve", "--tuples", "64"]) == 0


def test_spill_chaos_exit_code_passes_through(monkeypatch):
    monkeypatch.setattr(cli, "run_spill_chaos", lambda *a, **k: 1)
    assert cli.main(["chaos", "--spill", "--tuples", "64"]) == 1
    monkeypatch.setattr(cli, "run_spill_chaos", lambda *a, **k: 0)
    assert cli.main(["chaos", "--spill", "--tuples", "64"]) == 0


def test_serve_and_spill_are_mutually_exclusive(capsys):
    assert cli.main(["chaos", "--serve", "--spill"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_spill_chaos_receives_artifact_dir(monkeypatch, tmp_path):
    seen = {}

    def fake(n, theta, seed, artifact_dir):
        seen.update(n=n, artifact_dir=artifact_dir)
        return 0

    monkeypatch.setattr(cli, "run_spill_chaos", fake)
    assert cli.main(["chaos", "--spill", "--tuples", "128",
                     "--artifact-dir", str(tmp_path)]) == 0
    assert seen["n"] == 128
    assert seen["artifact_dir"] == str(tmp_path)
