"""Tests for JSON serialization of join results."""

import json

import pytest

from repro.cpu import CbaseJoin
from repro.data.generators import uniform_input
from repro.errors import ReproError
from repro.exec.serialize import (
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
    results_from_json,
    results_to_json,
)


@pytest.fixture(scope="module")
def sample_result():
    ji = uniform_input(2000, 2000, seed=3)
    return CbaseJoin().run(ji)


def test_round_trip_preserves_everything(sample_result):
    restored = result_from_dict(result_to_dict(sample_result))
    assert restored.algorithm == sample_result.algorithm
    assert restored.output_count == sample_result.output_count
    assert restored.output_checksum == sample_result.output_checksum
    assert restored.simulated_seconds == pytest.approx(
        sample_result.simulated_seconds)
    assert [p.name for p in restored.phases] == [
        p.name for p in sample_result.phases]
    assert (restored.phase("join").counters.as_dict()
            == sample_result.phase("join").counters.as_dict())


def test_json_round_trip(sample_result):
    text = result_to_json(sample_result, indent=2)
    json.loads(text)  # valid JSON
    restored = result_from_json(text)
    assert restored.matches(sample_result)


def test_results_list_round_trip(sample_result):
    text = results_to_json([sample_result, sample_result])
    restored = results_from_json(text)
    assert len(restored) == 2
    assert all(r.matches(sample_result) for r in restored)


def test_zero_counters_are_elided(sample_result):
    data = result_to_dict(sample_result)
    for phase in data["phases"]:
        assert all(v != 0 for v in phase["counters"].values())


def test_version_check():
    with pytest.raises(ReproError):
        result_from_dict({"format_version": 999})


def test_meta_is_jsonable():
    from repro.core.gsh import GSHJoin
    from repro.data.zipf import ZipfWorkload
    ji = ZipfWorkload(20000, 20000, theta=1.0, seed=1).generate()
    res = GSHJoin().run(ji)  # meta contains a list of numpy ints
    text = result_to_json(res)
    assert result_from_json(text).output_count == res.output_count
