"""Tests for the shared key-matching helpers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.exec.matching import (
    emit_matches,
    expand_pairs,
    match_group_stats,
    per_key_match_counts,
)
from repro.exec.output import JoinOutputBuffer

U64 = (1 << 64) - 1


def brute_force(r_keys, r_pays, s_keys, s_pays):
    count = 0
    checksum = 0
    pairs = []
    for rk, rp in zip(r_keys, r_pays):
        for sk, sp in zip(s_keys, s_pays):
            if rk == sk:
                count += 1
                checksum = (checksum + int(rp) * int(sp)) & U64
                pairs.append((int(rp), int(sp)))
    return count, checksum, pairs


small_rel = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 1000)), min_size=0, max_size=30
)


@given(small_rel, small_rel)
@settings(max_examples=120)
def test_match_group_stats_matches_brute_force(r_list, s_list):
    rk = np.array([t[0] for t in r_list], dtype=np.uint32)
    rp = np.array([t[1] for t in r_list], dtype=np.uint32)
    sk = np.array([t[0] for t in s_list], dtype=np.uint32)
    sp = np.array([t[1] for t in s_list], dtype=np.uint32)
    count, checksum, _ = brute_force(rk, rp, sk, sp)
    got_count, got_checksum = match_group_stats(rk, rp, sk, sp)
    assert got_count == count
    assert got_checksum == checksum


@given(small_rel, small_rel)
@settings(max_examples=120)
def test_expand_pairs_matches_brute_force_multiset(r_list, s_list):
    rk = np.array([t[0] for t in r_list], dtype=np.uint32)
    rp = np.array([t[1] for t in r_list], dtype=np.uint32)
    sk = np.array([t[0] for t in s_list], dtype=np.uint32)
    sp = np.array([t[1] for t in s_list], dtype=np.uint32)
    _, _, pairs = brute_force(rk, rp, sk, sp)
    er, es = expand_pairs(rk, rp, sk, sp)
    got = sorted(zip(er.tolist(), es.tolist()))
    assert got == sorted(pairs)


@given(small_rel, small_rel)
@settings(max_examples=80)
def test_emit_matches_summary(r_list, s_list):
    rk = np.array([t[0] for t in r_list], dtype=np.uint32)
    rp = np.array([t[1] for t in r_list], dtype=np.uint32)
    sk = np.array([t[0] for t in s_list], dtype=np.uint32)
    sp = np.array([t[1] for t in s_list], dtype=np.uint32)
    count, checksum, _ = brute_force(rk, rp, sk, sp)
    buf = JoinOutputBuffer(1 << 12)
    summary = emit_matches(rk, rp, sk, sp, buf)
    assert summary.count == count == buf.count
    assert summary.checksum == checksum == buf.checksum


def test_per_key_match_counts():
    target = np.array([5, 5, 7, 9], dtype=np.uint32)
    query = np.array([5, 7, 8, 9, 10], dtype=np.uint32)
    got = per_key_match_counts(query, target)
    assert got.tolist() == [2, 1, 0, 1, 0]


def test_per_key_match_counts_empty():
    assert per_key_match_counts(
        np.empty(0, np.uint32), np.array([1], np.uint32)
    ).size == 0
    assert per_key_match_counts(
        np.array([1], np.uint32), np.empty(0, np.uint32)
    ).tolist() == [0]


def test_emit_matches_large_group_uses_summary_only():
    """Beyond MATERIALIZE_LIMIT the ring gets no pairs but exact totals."""
    n = 1 << 11  # n*n = 4M pairs > MATERIALIZE_LIMIT (2M)
    rk = np.zeros(n, dtype=np.uint32)
    rp = np.ones(n, dtype=np.uint32)
    sk = np.zeros(n, dtype=np.uint32)
    sp = np.full(n, 2, dtype=np.uint32)
    buf = JoinOutputBuffer(16)
    summary = emit_matches(rk, rp, sk, sp, buf)
    assert summary.count == n * n
    assert summary.checksum == (n * n * 2) & U64
    assert buf.count == n * n
