"""Unit tests of the execution-backend selector."""

import pytest

from repro.errors import ConfigError
from repro.exec.backend import (
    BACKEND_ENV,
    BACKENDS,
    SCALAR,
    VECTOR,
    backend_from_env,
    current_backend,
    dispatch,
    is_vector,
    use_backend,
    validate_backend,
)


def test_default_backend_is_vector(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert current_backend() == VECTOR
    assert is_vector()


def test_env_selects_backend(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "scalar")
    assert backend_from_env() == SCALAR
    assert current_backend() == SCALAR
    assert not is_vector()


def test_env_is_normalized(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "  VeCtOr ")
    assert backend_from_env() == VECTOR


def test_invalid_env_raises_config_error(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "simd")
    with pytest.raises(ConfigError) as excinfo:
        backend_from_env()
    assert "simd" in str(excinfo.value)
    assert excinfo.value.context["valid"] == list(BACKENDS)


def test_validate_backend_rejects_non_string():
    with pytest.raises(ConfigError):
        validate_backend(123)


def test_use_backend_overrides_and_restores(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    with use_backend(SCALAR):
        assert current_backend() == SCALAR
    assert current_backend() == VECTOR


def test_use_backend_nests_and_unwinds():
    with use_backend(SCALAR):
        with use_backend(VECTOR):
            assert current_backend() == VECTOR
        assert current_backend() == SCALAR


def test_use_backend_overrides_env(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "scalar")
    with use_backend(VECTOR):
        assert current_backend() == VECTOR
    assert current_backend() == SCALAR


def test_use_backend_rejects_invalid_name():
    with pytest.raises(ConfigError):
        with use_backend("gpu"):
            pass


def test_dispatch_picks_by_backend():
    def scalar_impl():
        return "s"

    def vector_impl():
        return "v"

    with use_backend(SCALAR):
        assert dispatch(scalar_impl, vector_impl)() == "s"
    with use_backend(VECTOR):
        assert dispatch(scalar_impl, vector_impl)() == "v"
