"""Tests for PhaseTimer and JoinResult containers."""

import pytest

from repro.errors import ExecutionError
from repro.exec.counters import OpCounters
from repro.exec.phase import PhaseTimer
from repro.exec.result import JoinResult, PhaseResult, compare_results


def make_result(algorithm="alg", count=10, checksum=99, phases=()):
    res = JoinResult(algorithm=algorithm, n_r=4, n_s=4,
                     output_count=count, output_checksum=checksum)
    res.phases.extend(phases)
    return res


def test_phase_timer_records_simulated_and_wall():
    with PhaseTimer("build") as timer:
        timer.finish(simulated_seconds=1.5,
                     counters=OpCounters(hash_ops=3),
                     task_count=2, foo=1.0)
    result = timer.result
    assert result.name == "build"
    assert result.simulated_seconds == 1.5
    assert result.counters.hash_ops == 3
    assert result.task_count == 2
    assert result.details["foo"] == 1.0
    assert result.wall_seconds >= 0


def test_phase_timer_requires_finish():
    with pytest.raises(ExecutionError):
        with PhaseTimer("p"):
            pass


def test_phase_timer_rejects_negative_time():
    with pytest.raises(ExecutionError):
        with PhaseTimer("p") as timer:
            timer.finish(simulated_seconds=-1.0)


def test_phase_timer_propagates_exceptions():
    with pytest.raises(RuntimeError):
        with PhaseTimer("p"):
            raise RuntimeError("boom")


def test_join_result_aggregates_phases():
    phases = [
        PhaseResult("a", 1.0, OpCounters(hash_ops=1)),
        PhaseResult("b", 2.0, OpCounters(hash_ops=2, chain_steps=3)),
    ]
    res = make_result(phases=phases)
    assert res.simulated_seconds == pytest.approx(3.0)
    assert res.counters.hash_ops == 3
    assert res.counters.chain_steps == 3
    assert res.breakdown() == {"a": 1.0, "b": 2.0}
    assert res.phase("b").simulated_seconds == 2.0
    assert res.phase_seconds("a", "b") == pytest.approx(3.0)


def test_join_result_phase_lookup_raises():
    res = make_result(phases=[PhaseResult("a", 1.0)])
    with pytest.raises(KeyError):
        res.phase("missing")


def test_matches_and_compare_results():
    a = make_result(count=5, checksum=1)
    b = make_result(algorithm="other", count=5, checksum=1)
    c = make_result(algorithm="bad", count=6, checksum=1)
    assert a.matches(b)
    assert compare_results([a, b]) is None
    msg = compare_results([a, b, c])
    assert msg is not None and "bad" in msg


def test_compare_results_empty_is_ok():
    assert compare_results([]) is None


def test_summary_line_mentions_phases():
    res = make_result(phases=[PhaseResult("join", 0.25)])
    line = res.summary_line()
    assert "join=" in line and "alg" in line
