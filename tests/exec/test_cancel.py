"""Deadline admission and boundary semantics.

Two edges the serving layer depends on: a zero budget is a
configuration error refused *at admission* (never a request that is
born expired and burns a slot before failing), and the budget boundary
itself is inclusive — a checkpoint at exactly ``elapsed == budget``
raises, so a charged delay that lands the clock precisely on the
budget cannot slip through.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, DeadlineExceeded
from repro.exec.cancel import CancelScope, Deadline, cancel_scope, checkpoint


def test_zero_deadline_is_refused_at_admission():
    with pytest.raises(ConfigError) as excinfo:
        Deadline(0)
    assert "deadline_ms" in str(excinfo.value)


@pytest.mark.parametrize("bad", [0.0, -1, -0.5, float("nan")])
def test_non_positive_and_nan_budgets_are_config_errors(bad):
    # NaN fails the `budget_ms > 0` admission check too — a deadline
    # that could never expire is as wrong as one already expired.
    with pytest.raises(ConfigError):
        Deadline(bad)


def test_checkpoint_exactly_at_the_boundary_raises():
    # Fake clock: no wall time passes, the charge lands elapsed_ms
    # exactly on budget_ms.  Inclusive semantics: that already expires.
    deadline = Deadline(50.0, clock=lambda: 0.0)
    deadline.charge(0.050)  # 50ms charged, elapsed == budget
    assert deadline.elapsed_ms == deadline.budget_ms
    assert deadline.expired
    assert deadline.remaining_ms == 0.0
    with pytest.raises(DeadlineExceeded) as excinfo:
        CancelScope(deadline=deadline).checkpoint(site="boundary")
    assert excinfo.value.context["deadline_ms"] == 50.0


def test_one_tick_under_the_boundary_does_not_raise():
    deadline = Deadline(50.0, clock=lambda: 0.0)
    deadline.charge(0.049999)
    assert not deadline.expired
    CancelScope(deadline=deadline).checkpoint()  # must not raise


def test_module_checkpoint_honors_the_boundary_ambiently():
    deadline = Deadline(10.0, clock=lambda: 0.0)
    with cancel_scope(deadline=deadline):
        checkpoint()  # fresh budget: fine
        deadline.charge(0.010)
        with pytest.raises(DeadlineExceeded):
            checkpoint()
    checkpoint()  # scope gone: no-op again
