"""Units for the parallel backend: arenas, pool, gating, and fallback."""

import warnings

import numpy as np
import pytest

from repro.api import make_join
from repro.data.zipf import ZipfWorkload
from repro.errors import ConfigError, ExecutionError
from repro.exec import backend as backend_mod
from repro.exec.backend import PARALLEL, VECTOR, dispatch, use_backend
from repro.exec.differential import compare_results
from repro.exec.parallel import (
    DEFAULT_MIN_PARALLEL_TUPLES,
    MIN_TUPLES_ENV,
    WORKERS_ENV,
    SharedArena,
    WorkerPool,
    morsel_pool,
    shared_memory_probe,
    shutdown_pool,
)
from repro.exec.parallel import pool as pool_mod
from repro.exec.parallel.arena import Attachment, attached, file_backed_ref
from repro.exec.parallel.kernels import KERNELS, run_kernel
from repro.obs import tracing

_SHM_REASON = shared_memory_probe()
needs_shm = pytest.mark.skipif(
    _SHM_REASON is not None,
    reason=f"shared memory unusable here: {_SHM_REASON}")


# ---------------------------------------------------------------- arena

def test_shared_memory_probe_returns_none_or_reason():
    assert _SHM_REASON is None or isinstance(_SHM_REASON, str)


def test_inline_arena_carries_arrays_directly():
    with SharedArena(use_shm=False) as arena:
        data = np.arange(10, dtype=np.uint32)
        ref = arena.share(data)
        assert ref.shm_name is None
        assert np.array_equal(ref.array, data)
        out, out_ref = arena.output_like(data)
        assert out is data  # worker writes land in the caller's array
        view, empty_ref = arena.empty(4, np.int64)
        assert view.shape == (4,) and empty_ref.array is view


@needs_shm
def test_shm_arena_round_trips_through_attachment():
    data = np.arange(100, dtype=np.uint32)
    with SharedArena(use_shm=True) as arena:
        ref = arena.share(data)
        assert ref.shm_name is not None and ref.array is None
        with attached(ref) as (arr,):
            assert np.array_equal(arr, data)
            arr[0] = 999  # attached views alias the driver's segment
        view, out_ref = arena.empty(3, np.uint64)
        view[:] = (1, 2, 3)
        with attached(out_ref) as (out,):
            assert out.tolist() == [1, 2, 3]


@needs_shm
def test_shm_arena_handles_zero_size_arrays():
    with SharedArena(use_shm=True) as arena:
        ref = arena.share(np.empty(0, dtype=np.uint32))
        with attached(ref) as (arr,):
            assert arr.size == 0


def test_file_backed_ref_covers_read_only_memmap_slices(tmp_path):
    data = np.arange(64, dtype=np.uint32)
    path = tmp_path / "chunk.bin"
    data.tofile(path)
    mapped = np.memmap(path, dtype=np.uint32, mode="r")
    morsel = mapped[3:9]
    ref = file_backed_ref(morsel)
    assert ref is not None
    assert ref.path == str(path)
    assert ref.offset == 3 * 4  # slice start, in bytes
    assert ref.shape == (6,) and ref.shm_name is None and ref.array is None
    # Everything that can't be shipped as a path ref declines to None:
    # plain arrays, writable mappings, and non-contiguous views.
    assert file_backed_ref(np.arange(8, dtype=np.uint32)) is None
    writable = np.memmap(path, dtype=np.uint32, mode="r+")
    assert file_backed_ref(writable) is None
    assert file_backed_ref(mapped[::2]) is None


def test_attachment_maps_path_refs_and_closes(tmp_path):
    data = np.arange(32, dtype=np.uint64)
    path = tmp_path / "chunk.bin"
    data.tofile(path)
    mapped = np.memmap(path, dtype=np.uint64, mode="r")
    ref = file_backed_ref(mapped[10:20])
    attachment = Attachment(ref)
    assert np.array_equal(attachment.array, data[10:20])
    attachment.close()
    assert attachment.array is None
    attachment.close()  # idempotent


def test_shared_arena_ships_file_mapped_morsels_zero_copy(tmp_path):
    data = np.arange(128, dtype=np.uint32)
    path = tmp_path / "chunk.bin"
    data.tofile(path)
    mapped = np.memmap(path, dtype=np.uint32, mode="r")
    # No segment is ever allocated on this path, so the test runs even
    # where POSIX shared memory does not.
    with tracing("arena") as tracer, SharedArena(use_shm=True) as arena:
        ref = arena.share(mapped[16:48])
        assert ref.path == str(path) and ref.shm_name is None
        with attached(ref) as (arr,):
            assert np.array_equal(arr, data[16:48])
    metrics = tracer.record().metrics
    assert metrics["store.zero_copy_shares"]["value"] == 1


# ----------------------------------------------------------------- pool

def test_inline_pool_runs_kernels_in_process():
    pool = WorkerPool(1)
    assert not pool.uses_processes
    with SharedArena(use_shm=False) as arena:
        ids = arena.share(np.array([0, 1, 1, 2, 2, 2], dtype=np.int64))
        [hist] = pool.run("partition_hist",
                          [{"ids": ids, "a": 0, "b": 6, "fanout": 4}])
    assert hist.tolist() == [1, 2, 3, 0]
    pool.shutdown()  # no-op for inline pools


@needs_shm
def test_process_pool_returns_results_in_task_order():
    pool = WorkerPool(2)
    try:
        assert pool.uses_processes
        with SharedArena(use_shm=True) as arena:
            ids = arena.share(np.arange(8, dtype=np.int64) % 4)
            specs = [{"ids": ids, "a": a, "b": a + 4, "fanout": 4}
                     for a in (0, 4)]
            results = pool.run("partition_hist", specs)
        assert [r.tolist() for r in results] == [[1, 1, 1, 1], [1, 1, 1, 1]]
        pids = set(pool.run("worker_identity", [{}, {}, {}, {}]))
        assert pids  # real child processes answered
    finally:
        pool.shutdown()


@needs_shm
def test_worker_failure_raises_typed_execution_error():
    pool = WorkerPool(2)
    try:
        with pytest.raises(ExecutionError) as excinfo:
            pool.run("no-such-kernel", [{}])
        assert "no-such-kernel" in str(excinfo.value)
    finally:
        pool.shutdown()


def test_run_kernel_dispatches_registry():
    assert set(KERNELS) >= {"partition_hist", "partition_scatter",
                            "refine_chunk", "chain_links", "match_stats",
                            "expand_count", "expand_write"}
    assert isinstance(run_kernel("worker_identity", {}), int)


def test_worker_count_env_validation(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "3")
    assert pool_mod.worker_count() == 3
    monkeypatch.setenv(WORKERS_ENV, "zero")
    with pytest.raises(ConfigError):
        pool_mod.worker_count()
    monkeypatch.setenv(WORKERS_ENV, "0")
    with pytest.raises(ConfigError):
        pool_mod.worker_count()
    monkeypatch.delenv(WORKERS_ENV)
    assert pool_mod.worker_count() >= 1


def test_min_tuples_env_validation(monkeypatch):
    monkeypatch.delenv(MIN_TUPLES_ENV, raising=False)
    assert pool_mod.min_parallel_tuples() == DEFAULT_MIN_PARALLEL_TUPLES
    monkeypatch.setenv(MIN_TUPLES_ENV, "0")
    assert pool_mod.min_parallel_tuples() == 0
    monkeypatch.setenv(MIN_TUPLES_ENV, "-1")
    with pytest.raises(ConfigError):
        pool_mod.min_parallel_tuples()


def test_get_pool_rebuilds_when_worker_count_changes(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "1")
    try:
        first = pool_mod.get_pool()
        assert first.n_workers == 1 and not first.uses_processes
        assert pool_mod.get_pool() is first  # cached while env is stable
        if _SHM_REASON is None:
            monkeypatch.setenv(WORKERS_ENV, "2")
            second = pool_mod.get_pool()
            assert second is not first and second.n_workers == 2
    finally:
        shutdown_pool()


# --------------------------------------------------------------- gating

def test_morsel_pool_requires_parallel_backend(monkeypatch):
    monkeypatch.setenv(MIN_TUPLES_ENV, "0")
    with use_backend(VECTOR):
        assert morsel_pool(1 << 20) is None


def test_morsel_pool_respects_min_tuples(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "1")
    monkeypatch.setenv(MIN_TUPLES_ENV, "1000")
    try:
        with use_backend(PARALLEL):
            assert morsel_pool(999) is None
            if _SHM_REASON is None:
                assert morsel_pool(1000) is not None
    finally:
        shutdown_pool()


# ------------------------------------------------------------- fallback

@pytest.fixture
def unavailable_parallel(monkeypatch):
    """Pretend the host cannot do shared memory; reset the warn latch."""
    monkeypatch.setattr(pool_mod, "_availability",
                        (False, "unit-test: no shared memory"))
    monkeypatch.setattr(backend_mod, "_warned_fallback", False)


def test_require_parallel_raises_typed_config_error(unavailable_parallel):
    with pytest.raises(ConfigError) as excinfo:
        backend_mod.require_parallel()
    message = str(excinfo.value)
    assert "REPRO_BACKEND=vector" in message
    assert excinfo.value.context["backend"] == PARALLEL


def test_dispatch_degrades_to_vector_with_one_warning(unavailable_parallel):
    def scalar():
        return "scalar"

    def vector():
        return "vector"

    def parallel():
        return "parallel"

    with use_backend(PARALLEL):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert dispatch(scalar, vector, parallel) is vector
            assert dispatch(scalar, vector, parallel) is vector
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1  # warn once per process, not per call
        assert "falling back" in str(runtime[0].message)


def test_morsel_pool_gates_off_when_unavailable(unavailable_parallel,
                                                monkeypatch):
    monkeypatch.setenv(MIN_TUPLES_ENV, "0")
    with use_backend(PARALLEL):
        assert morsel_pool(1 << 20) is None


def test_require_parallel_passes_when_available(monkeypatch):
    if _SHM_REASON is not None:
        pytest.skip(f"shared memory unusable here: {_SHM_REASON}")
    backend_mod.require_parallel()  # must not raise


# ---------------------------------------------------- end-to-end checks

@needs_shm
def test_parallel_join_matches_vector_with_real_pool(parallel_pool_env):
    join_input = ZipfWorkload(4096, 4096, theta=1.0, seed=3).generate()
    results = {}
    for backend in (VECTOR, PARALLEL):
        with use_backend(backend):
            results[backend] = make_join("csh").run(join_input)
    assert compare_results(results[VECTOR], results[PARALLEL]) == []
    assert results[PARALLEL].meta["backend"] == PARALLEL


# ------------------------------------------------------------- healing

def test_respawn_budget_env_validation(monkeypatch):
    from repro.exec.parallel import DEFAULT_MAX_RESPAWNS, RESPAWNS_ENV

    monkeypatch.delenv(RESPAWNS_ENV, raising=False)
    assert pool_mod.respawn_budget() == DEFAULT_MAX_RESPAWNS
    monkeypatch.setenv(RESPAWNS_ENV, "0")
    assert pool_mod.respawn_budget() == 0
    monkeypatch.setenv(RESPAWNS_ENV, "-1")
    with pytest.raises(ConfigError):
        pool_mod.respawn_budget()
    monkeypatch.setenv(RESPAWNS_ENV, "many")
    with pytest.raises(ConfigError):
        pool_mod.respawn_budget()


def test_liveness_snapshot_and_inline_kill():
    import os

    pool = WorkerPool(1)
    assert pool.liveness() == {
        "workers": 1, "alive": 1, "processes": False,
        "respawns": 0, "max_respawns": pool.max_respawns,
        "exhausted": False,
    }
    assert pool.kill_worker(0) is None  # inline pools have no processes
    assert pool.heal() == 0
    assert os.getpid()  # inline liveness never touches other processes


def test_current_liveness_is_none_without_a_pool():
    shutdown_pool()
    assert pool_mod.current_liveness() is None
    assert pool_mod.current_liveness(heal=True) is None


@needs_shm
def test_heal_respawns_a_killed_worker():
    pool = WorkerPool(2, max_respawns=3)
    pool.poll_seconds = 0.05
    try:
        pid = pool.kill_worker(0)
        assert pid is not None
        assert pool.alive_workers() == 1
        assert pool.heal() == 1
        assert pool.alive_workers() == 2
        assert pool.respawns == 1 and not pool.exhausted
        # The healed pool still computes.
        pids = pool.run("worker_identity", [{}, {}])
        assert all(isinstance(p, int) for p in pids)
        assert pool.kill_worker(99) is None  # out-of-range is a no-op
    finally:
        pool.shutdown()


@needs_shm
def test_dead_workers_mid_run_heal_and_reenqueue_exactly_once():
    import os

    pool = WorkerPool(2, max_respawns=2)
    pool.poll_seconds = 0.05
    try:
        assert pool.kill_worker(0) is not None
        assert pool.kill_worker(1) is not None
        # Every morsel the dead workers would have taken is re-enqueued
        # (dedup by task id) and computed by the respawned workers.
        pids = pool.run("worker_identity", [{}, {}, {}, {}])
        assert len(pids) == 4
        assert all(isinstance(p, int) and p != os.getpid() for p in pids)
        assert pool.respawns == 2
        assert not pool.exhausted
        assert pool.alive_workers() == 2
    finally:
        pool.shutdown()


@needs_shm
def test_exhausted_pool_finishes_morsels_inline():
    import os

    pool = WorkerPool(2, max_respawns=0)
    pool.poll_seconds = 0.05
    try:
        assert pool.kill_worker(0) is not None
        assert pool.kill_worker(1) is not None
        # No respawn budget: the run still answers, computed inline.
        pids = pool.run("worker_identity", [{}, {}, {}])
        assert pids == [os.getpid()] * 3
        assert pool.exhausted
        assert pool.alive_workers() == 0
        assert pool.liveness()["exhausted"] is True
    finally:
        pool.shutdown()


@needs_shm
def test_morsel_pool_warns_once_and_degrades_when_exhausted(
        parallel_pool_env):
    from repro.exec.parallel import reset_exhaustion_warning

    reset_exhaustion_warning()
    try:
        with use_backend(PARALLEL):
            pool = pool_mod.get_pool()
            pool.exhausted = True
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert morsel_pool(1 << 20) is None
                assert morsel_pool(1 << 20) is None
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1  # warn once, then degrade silently
        assert "respawn budget" in str(runtime[0].message)
    finally:
        reset_exhaustion_warning()


@needs_shm
def test_current_liveness_heals_killed_workers(parallel_pool_env):
    pool = pool_mod.get_pool()
    pool.poll_seconds = 0.05
    assert pool.kill_worker(0) is not None
    live = pool_mod.current_liveness(heal=True)
    assert live["alive"] == 2
    assert live["respawns"] == 1
    assert live["exhausted"] is False
