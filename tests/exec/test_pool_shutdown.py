"""WorkerPool.shutdown() must be safe whatever state the pool is in.

The serve daemon and atexit both call shutdown on whatever pool object
exists at that moment — including one whose ``__init__`` never finished
(ConfigError mid-construction), one built inline (no processes), or one
already shut down.  None of those may raise.
"""

from __future__ import annotations

from repro.exec.parallel.pool import WorkerPool


def test_shutdown_on_never_started_pool_is_a_noop():
    # A partially-constructed instance: __new__ only, no attributes at
    # all — the state shutdown sees when __init__ raised early.
    pool = WorkerPool.__new__(WorkerPool)
    pool.shutdown()  # must not raise
    assert pool._procs == []
    assert pool._tasks is None
    assert pool._results is None


def test_shutdown_tolerates_half_built_attributes():
    pool = WorkerPool.__new__(WorkerPool)
    pool._procs = []
    pool._tasks = None
    # _results intentionally missing entirely
    pool.shutdown()
    pool.shutdown()  # and again


def test_inline_pool_shutdown_is_idempotent():
    pool = WorkerPool(1)
    assert not pool.uses_processes
    pool.shutdown()
    pool.shutdown()
    assert pool._procs == []


def test_process_pool_double_shutdown(parallel_pool_env):
    pool = WorkerPool(2)
    try:
        assert pool.uses_processes
        assert pool.alive_workers() == 2
    finally:
        pool.shutdown()
    assert pool._procs == [] and not pool.uses_processes
    pool.shutdown()  # second call finds everything cleared
    assert pool._tasks is None and pool._results is None
