"""Tests for the CPU and GPU cost models."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.exec.cost_model import CPUCostModel, GPUCostModel
from repro.exec.counters import OpCounters


def test_cpu_zero_counters_cost_nothing():
    assert CPUCostModel().seconds(OpCounters()) == 0.0


def test_cpu_seconds_prices_each_field():
    model = CPUCostModel(hash_ns=2.0, chain_step_ns=1.0, output_write_ns=1.0)
    c = OpCounters(hash_ops=1000, chain_steps=500, output_tuples=250)
    expected = (1000 * 2.0 + 500 * 1.0 + 250 * 1.0) * 1e-9
    assert model.seconds(c) == pytest.approx(expected)


def test_cpu_task_overhead_added_once():
    model = CPUCostModel(task_overhead_ns=2000.0)
    c = OpCounters(hash_ops=1)
    assert model.task_seconds(c) - model.seconds(c) == pytest.approx(2e-6)


def test_cpu_bytes_not_priced_directly():
    model = CPUCostModel()
    assert model.seconds(OpCounters(bytes_read=10**9)) == 0.0


def test_gpu_bandwidth_terms():
    model = GPUCostModel(device_bandwidth=1e12, bandwidth_efficiency=0.5,
                         sm_count=100)
    assert model.effective_bandwidth == pytest.approx(5e11)
    assert model.per_sm_bandwidth == pytest.approx(5e9)
    c = OpCounters(bytes_read=5_000_000_000)
    assert model.block_memory_seconds(c) == pytest.approx(1.0)


def test_gpu_block_seconds_combines_compute_and_memory():
    model = GPUCostModel()
    c = OpCounters(sync_barriers=10**6, bytes_written=10**8)
    total = model.block_seconds(c)
    assert total == pytest.approx(
        model.block_compute_seconds(c) + model.block_memory_seconds(c)
    )
    assert total > 0


def test_gpu_rejects_bad_config():
    with pytest.raises(ConfigError):
        GPUCostModel(sm_count=0)
    with pytest.raises(ConfigError):
        GPUCostModel(bandwidth_efficiency=0.0)
    with pytest.raises(ConfigError):
        GPUCostModel(bandwidth_efficiency=1.5)


@given(st.integers(0, 10**12), st.integers(0, 10**12))
def test_cpu_cost_additive(a, b):
    model = CPUCostModel()
    ca = OpCounters(chain_steps=a)
    cb = OpCounters(chain_steps=b)
    assert model.seconds(ca + cb) == pytest.approx(
        model.seconds(ca) + model.seconds(cb)
    )


@given(st.integers(0, 10**10))
def test_cpu_cost_monotone_in_output(n):
    model = CPUCostModel()
    assert model.seconds(OpCounters(output_tuples=n + 1)) >= model.seconds(
        OpCounters(output_tuples=n)
    )
