"""Unit and property tests for OpCounters."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.exec.counters import OpCounters

FIELDS = list(OpCounters.field_names())

counter_values = st.integers(min_value=0, max_value=10**15)
counters_strategy = st.builds(
    OpCounters, **{name: counter_values for name in FIELDS}
)


def test_default_is_zero():
    assert OpCounters().is_zero()
    assert OpCounters().total_ops() == 0


def test_add_combines_fields():
    a = OpCounters(hash_ops=3, output_tuples=7)
    b = OpCounters(hash_ops=2, chain_steps=5)
    c = a + b
    assert c.hash_ops == 5
    assert c.output_tuples == 7
    assert c.chain_steps == 5
    # operands untouched
    assert a.hash_ops == 3
    assert b.chain_steps == 5


def test_iadd_mutates_in_place():
    a = OpCounters(key_compares=1)
    a += OpCounters(key_compares=2, sync_barriers=4)
    assert a.key_compares == 3
    assert a.sync_barriers == 4


def test_scaled():
    a = OpCounters(tuple_moves=3, bytes_read=8)
    b = a.scaled(4)
    assert b.tuple_moves == 12
    assert b.bytes_read == 32
    assert a.tuple_moves == 3


def test_scaled_rejects_negative():
    with pytest.raises(ValueError):
        OpCounters().scaled(-1)


def test_sum_of_iterable():
    items = [OpCounters(hash_ops=i) for i in range(5)]
    assert OpCounters.sum(items).hash_ops == 10


def test_total_ops_excludes_bytes():
    c = OpCounters(hash_ops=2, bytes_read=1000, bytes_written=500)
    assert c.total_ops() == 2


def test_copy_is_independent():
    a = OpCounters(atomic_ops=1)
    b = a.copy()
    b.atomic_ops += 1
    assert a.atomic_ops == 1


def test_large_values_do_not_overflow():
    huge = 5 * 10**12
    c = OpCounters(output_tuples=huge) + OpCounters(output_tuples=huge)
    assert c.output_tuples == 2 * huge


@given(counters_strategy, counters_strategy)
def test_addition_commutes(a, b):
    assert (a + b).as_dict() == (b + a).as_dict()


@given(counters_strategy, st.integers(min_value=0, max_value=1000))
def test_scaling_matches_repeated_addition(c, k):
    total = OpCounters.sum(c for _ in range(k))
    assert total.as_dict() == c.scaled(k).as_dict()


@given(counters_strategy)
def test_as_dict_round_trip(c):
    assert OpCounters(**c.as_dict()).as_dict() == c.as_dict()
