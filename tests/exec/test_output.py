"""Tests for the ring output buffer and its closed-form checksums."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.exec.output import JoinOutputBuffer, OutputSummary, combine_summaries

U64 = (1 << 64) - 1


def reference_checksum(r, s):
    return int(sum((int(a) * int(b)) & U64 for a, b in zip(r, s)) & U64)


def test_rejects_non_positive_capacity():
    with pytest.raises(ConfigError):
        JoinOutputBuffer(0)


def test_write_pairs_counts_and_checksums():
    buf = JoinOutputBuffer(16)
    r = np.array([1, 2, 3], dtype=np.uint32)
    s = np.array([4, 5, 6], dtype=np.uint32)
    assert buf.write_pairs(r, s) == 3
    assert buf.count == 3
    assert buf.checksum == 1 * 4 + 2 * 5 + 3 * 6


def test_write_pairs_rejects_mismatched_shapes():
    buf = JoinOutputBuffer(4)
    with pytest.raises(ValueError):
        buf.write_pairs(np.zeros(2, np.uint32), np.zeros(3, np.uint32))


def test_ring_overwrite_keeps_last_capacity_tuples():
    buf = JoinOutputBuffer(4)
    r = np.arange(10, dtype=np.uint32)
    buf.write_pairs(r, r)
    assert buf.count == 10
    snap = buf.snapshot()
    assert snap.shape == (4, 2)
    assert sorted(snap[:, 0].tolist()) == [6, 7, 8, 9]


def test_incremental_writes_wrap_consistently():
    buf = JoinOutputBuffer(4)
    for i in range(7):
        buf.write_pairs(np.array([i], np.uint32), np.array([i], np.uint32))
    snap = buf.snapshot()
    assert sorted(snap[:, 0].tolist()) == [3, 4, 5, 6]


def test_cartesian_matches_explicit_pairs():
    r = np.array([3, 5], dtype=np.uint32)
    s = np.array([7, 11, 13], dtype=np.uint32)
    a = JoinOutputBuffer(64)
    a.write_cartesian(r, s)
    b = JoinOutputBuffer(64)
    rr = np.repeat(r, s.size)
    ss = np.tile(s, r.size)
    b.write_pairs(rr, ss)
    assert a.count == b.count == 6
    assert a.checksum == b.checksum
    assert sorted(map(tuple, a.snapshot().tolist())) == sorted(
        map(tuple, b.snapshot().tolist()))


def test_cartesian_overflowing_ring_keeps_tail():
    r = np.arange(1, 4, dtype=np.uint32)      # 3 R tuples
    s = np.arange(10, 15, dtype=np.uint32)    # 5 S tuples -> 15 pairs
    buf = JoinOutputBuffer(4)
    buf.write_cartesian(r, s)
    assert buf.count == 15
    snap = buf.snapshot()
    # Last 4 pairs in row-major order: (3,11),(3,12),(3,13),(3,14)
    assert sorted(map(tuple, snap.tolist())) == [
        (3, 11), (3, 12), (3, 13), (3, 14)
    ]


def test_empty_writes_are_noops():
    buf = JoinOutputBuffer(4)
    assert buf.write_pairs(np.empty(0, np.uint32), np.empty(0, np.uint32)) == 0
    assert buf.write_cartesian(np.empty(0, np.uint32),
                               np.arange(3, dtype=np.uint32)) == 0
    assert buf.count == 0 and buf.checksum == 0


def test_merge_and_combine_summaries():
    a = JoinOutputBuffer(4)
    b = JoinOutputBuffer(4)
    a.write_pairs(np.array([2], np.uint32), np.array([3], np.uint32))
    b.write_pairs(np.array([5], np.uint32), np.array([7], np.uint32))
    combined = combine_summaries([a, b])
    assert combined.count == 2
    assert combined.checksum == 2 * 3 + 5 * 7
    a.merge_summary(b)
    assert a.count == 2 and a.checksum == combined.checksum


def test_output_summary_equality():
    assert OutputSummary(1, 2) == OutputSummary(1, 2)
    assert OutputSummary(1, 2) != OutputSummary(1, 3)


@given(
    st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=40),
    st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=40),
)
@settings(max_examples=60)
def test_cartesian_checksum_closed_form(r_list, s_list):
    """(sum r)(sum s) mod 2^64 == sum over pairs r*s mod 2^64."""
    r = np.array(r_list, dtype=np.uint32)
    s = np.array(s_list, dtype=np.uint32)
    buf = JoinOutputBuffer(8)
    buf.write_cartesian(r, s)
    expect = (sum(map(int, r_list)) * sum(map(int, s_list))) & U64
    assert buf.checksum == expect
    assert buf.count == len(r_list) * len(s_list)


@given(st.lists(st.tuples(st.integers(0, 2**32 - 1),
                          st.integers(0, 2**32 - 1)),
                min_size=1, max_size=200),
       st.integers(1, 16))
@settings(max_examples=40)
def test_ring_retains_exactly_last_capacity(pairs, capacity):
    buf = JoinOutputBuffer(capacity)
    r = np.array([p[0] for p in pairs], dtype=np.uint32)
    s = np.array([p[1] for p in pairs], dtype=np.uint32)
    buf.write_pairs(r, s)
    keep = min(len(pairs), capacity)
    snap = buf.snapshot()
    assert snap.shape[0] == keep
    assert sorted(map(tuple, snap.tolist())) == sorted(
        (int(a), int(b)) for a, b in pairs[-keep:]
    )
    assert buf.checksum == reference_checksum(r, s)


def test_oversized_write_chunks_through_scratch():
    """Writes larger than capacity stream through the reused scratch in
    capacity-sized chunks; the chunked checksum must equal the direct one."""
    buf = JoinOutputBuffer(8)
    rng = np.random.default_rng(7)
    r = rng.integers(0, 2**32, size=100, dtype=np.uint32)
    s = rng.integers(0, 2**32, size=100, dtype=np.uint32)
    assert buf.write_pairs(r, s) == 100
    assert buf.count == 100
    assert buf.checksum == reference_checksum(r, s)
    assert buf._prod.size == buf.capacity  # scratch never grows


def test_scratch_reuse_keeps_repeat_writes_exact():
    buf = JoinOutputBuffer(16)
    a = np.arange(1, 6, dtype=np.uint32)
    expected = 0
    for _ in range(3):
        buf.write_pairs(a, a)
        expected = (expected + reference_checksum(a, a)) & U64
    assert buf.checksum == expected
