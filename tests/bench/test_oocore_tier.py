"""The out-of-core scale tier: record, verify, persist, gate.

The real paper-scale snapshot lives in ``BENCH_oocore_seed.json`` (and
is re-verified by the docs-consistency suite); these tests exercise the
machinery at toy scale.  Note the tier's budget claim *cannot* hold at
toy scale — interpreter fixed overheads (~5 MiB) dwarf a kilobyte-sized
dataset — so the recording fixture passes an explicit generous budget
and the verify() ladder is covered with hand-built records instead.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.bench.oocore import (
    OOCORE_SCHEMA_VERSION,
    OocoreBenchRecord,
    OocoreRun,
    compare_oocore_benches,
    load_oocore_bench,
    oocore_bench_path,
    oocore_from_dict,
    oocore_to_dict,
    record_oocore_bench,
    render_oocore,
    save_oocore_bench,
)
from repro.errors import BaselineError


@pytest.fixture(scope="module")
def recorded():
    # Tiny shape; generous explicit budget (see module docstring).
    return record_oocore_bench(
        "tier-test", n_r=256, n_s=4096, theta=0.75, seed=5,
        codec="zlib", chunk_tuples=1024, cache_segments=2, n_threads=2,
        budget_bytes=1 << 31, backends=("scalar", "vector"))


def _run(backend="scalar", wall=0.1, baseline=1_000_000, peak=3_000_000,
         count=42, checksum=0xBEEF):
    return OocoreRun(backend=backend, wall_seconds=wall,
                     baseline_rss_bytes=baseline, peak_rss_bytes=peak,
                     output_count=count, output_checksum=checksum)


def _record(**overrides):
    record = OocoreBenchRecord(
        tag="hand", algorithm="cbase-npj", n_r=64, n_s=512, theta=0.5,
        seed=1, codec="zlib", chunk_tuples=128, cache_segments=2,
        n_threads=2, dataset_bytes=10_000_000, budget_bytes=5_000_000,
        runs=[_run("scalar"), _run("vector"), _run("parallel")])
    return dataclasses.replace(record, **overrides)


# ------------------------------------------------------------- recording


def test_recorded_runs_are_bit_identical_and_measured(recorded):
    assert [run.backend for run in recorded.runs] == ["scalar", "vector"]
    reference = recorded.runs[0]
    assert reference.output_count > 0
    for run in recorded.runs:
        assert run.output_count == reference.output_count
        assert run.output_checksum == reference.output_checksum
        assert run.peak_rss_bytes > 0
        assert run.wall_seconds > 0
        assert run.delta_rss_bytes >= 0
    assert recorded.dataset_bytes == (256 + 4096) * 8
    assert recorded.run_for("vector") is recorded.runs[1]
    assert recorded.run_for("gpu-sim") is None


def test_delta_rss_clamps_at_zero():
    assert _run(baseline=500, peak=100).delta_rss_bytes == 0
    assert _run(baseline=100, peak=500).delta_rss_bytes == 400


# ---------------------------------------------------------------- verify


def test_verify_passes_a_consistent_out_of_core_record():
    assert _record().verify() == []


def test_verify_rejects_a_dataset_that_fits_the_budget():
    issues = _record(budget_bytes=10_000_000).verify()
    assert any("does not exceed the budget" in issue for issue in issues)


def test_verify_rejects_an_empty_record():
    assert _record(runs=[]).verify() == ["no backend runs recorded"]


def test_verify_rejects_a_diverging_backend():
    runs = [_run("scalar"), _run("vector", checksum=0xDEAD)]
    issues = _record(runs=runs).verify()
    assert any("vector answer diverged" in issue for issue in issues)


def test_verify_rejects_a_missing_rss_measurement():
    runs = [_run("scalar"), _run("vector", baseline=0, peak=0)]
    issues = _record(runs=runs).verify()
    assert issues == ["vector recorded no RSS measurement"]


def test_verify_rejects_an_over_budget_delta():
    runs = [_run("scalar"),
            _run("vector", baseline=0, peak=6_000_000)]
    issues = _record(runs=runs).verify()
    assert issues == ["vector RSS delta 6000000 B exceeds the "
                      "5000000 B budget"]


# ----------------------------------------------------------- persistence


def test_oocore_round_trips_through_json(tmp_path):
    record = _record()
    data = oocore_to_dict(record)
    assert data["schema_version"] == OOCORE_SCHEMA_VERSION
    assert data["runs"][0]["delta_rss_bytes"] == record.runs[0].delta_rss_bytes
    assert oocore_from_dict(data) == record
    path = save_oocore_bench(record, tmp_path / "BENCH_oocore_hand.json")
    assert load_oocore_bench(path) == record


def test_unknown_schema_version_fails_loudly():
    data = oocore_to_dict(_record())
    data["schema_version"] = 99
    with pytest.raises(BaselineError, match="schema version 99"):
        oocore_from_dict(data)


def test_malformed_baseline_fails_loudly():
    data = oocore_to_dict(_record())
    del data["budget_bytes"]
    with pytest.raises(BaselineError, match="malformed"):
        oocore_from_dict(data)


def test_missing_invalid_and_non_object_baselines_fail_loudly(tmp_path):
    with pytest.raises(BaselineError, match="no oocore baseline"):
        load_oocore_bench(tmp_path / "absent.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(BaselineError, match="not valid JSON"):
        load_oocore_bench(bad)
    arr = tmp_path / "arr.json"
    arr.write_text(json.dumps([1, 2]), encoding="utf-8")
    with pytest.raises(BaselineError, match="not a JSON object"):
        load_oocore_bench(arr)


def test_oocore_bench_path_shape(tmp_path):
    assert oocore_bench_path("seed").name == "BENCH_oocore_seed.json"
    assert oocore_bench_path("x", tmp_path).parent == tmp_path


# -------------------------------------------------------------- comparing


def test_compare_accepts_itself():
    record = _record()
    comparison = compare_oocore_benches(record, record)
    assert comparison.ok
    assert "OOCORE COMPARE OK" in comparison.render()


def test_compare_flags_a_wall_time_regression():
    baseline = _record()
    slow = [dataclasses.replace(run, wall_seconds=run.wall_seconds * 2)
            for run in baseline.runs]
    comparison = compare_oocore_benches(baseline, _record(runs=slow))
    assert not comparison.ok
    assert any("2.00x" in issue for issue in comparison.regressions)
    assert "REGRESSION" in comparison.render()


def test_compare_ignores_regressions_under_the_absolute_floor():
    baseline = _record(runs=[_run("scalar", wall=1e-4)])
    # 10x relative but only 0.9 ms absolute — under the 5 ms floor.
    candidate = _record(runs=[_run("scalar", wall=1e-3)])
    assert compare_oocore_benches(baseline, candidate).ok


def test_compare_flags_a_missing_backend():
    baseline = _record()
    candidate = _record(runs=[_run("scalar")])
    comparison = compare_oocore_benches(baseline, candidate)
    assert any("absent from candidate" in issue
               for issue in comparison.regressions)


def test_compare_surfaces_candidate_claim_failures():
    baseline = _record()
    candidate = _record(budget_bytes=baseline.dataset_bytes)
    comparison = compare_oocore_benches(baseline, candidate)
    assert not comparison.ok
    assert comparison.claim_failures
    assert "CLAIM FAILED" in comparison.render()


# -------------------------------------------------------------- rendering


def test_render_reports_the_verify_verdict(recorded):
    text = render_oocore(_record())
    assert "OOCORE OK" in text
    # The toy recording intentionally fails the out-of-core claim
    # (dataset fits the generous budget) — render says so.
    toy = render_oocore(recorded)
    assert "OOCORE FAILED" in toy
    assert "does not exceed the budget" in toy
