"""Tests for the bench harness: runner caching, renderers, experiments."""

import pytest

import repro.bench.runner as runner
from repro.bench.experiments import (
    run_detection,
    run_figure1,
    run_figure4,
    run_scaleup,
    run_table1,
)
from repro.bench.paper import PAPER_N_TUPLES, TABLE1, TABLE1_THETAS
from repro.bench.tables import (
    format_seconds,
    render_csv,
    render_series,
    render_table,
)
from repro.errors import ConfigError

TINY = 1 << 14
THETAS = (0.0, 0.5, 1.0)


@pytest.fixture(autouse=True)
def clean_caches():
    runner.clear_caches()
    yield
    runner.clear_caches()


class TestRunner:
    def test_bench_tuples_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert runner.bench_tuples() == runner.DEFAULT_BENCH_TUPLES
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert runner.bench_tuples() == PAPER_N_TUPLES
        monkeypatch.setenv("REPRO_BENCH_SCALE", "12345")
        assert runner.bench_tuples() == 12345

    @pytest.mark.parametrize("bad", ["papre", "-5", "0", "1.5"])
    def test_bench_tuples_rejects_invalid_scale(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_BENCH_SCALE", bad)
        with pytest.raises(ConfigError, match="REPRO_BENCH_SCALE"):
            runner.bench_tuples()

    def test_workload_cache_reuses_objects(self):
        a = runner.get_workload(TINY, 0.5)
        b = runner.get_workload(TINY, 0.5)
        assert a is b
        c = runner.get_workload(TINY, 0.6)
        assert c is not a

    def test_result_cache(self):
        a = runner.run_algorithm("cbase", TINY, 0.5)
        b = runner.run_algorithm("cbase", TINY, 0.5)
        assert a is b

    def test_sweep_structure(self):
        results = runner.sweep(("cbase", "csh"), THETAS, n=TINY)
        assert set(results) == set(THETAS)
        for algs in results.values():
            assert set(algs) == {"cbase", "csh"}
        points = runner.sweep_points(results)
        assert [p.parameter for p in points] == sorted(THETAS)

    def test_scale_label(self):
        assert "paper scale" in runner.scale_label(PAPER_N_TUPLES)
        assert "reduced" in runner.scale_label(1000)


class TestRenderers:
    def test_format_seconds(self):
        assert format_seconds(0) == "0"
        assert format_seconds(0.052).endswith("ms")
        assert format_seconds(3.2).endswith("s")

    def test_render_table_with_reference(self):
        rows = {"cbase join": {0.5: 1.0, 1.0: 100.0}}
        ref = {"cbase join": {0.5: 0.16, 1.0: 7593.0}}
        text = render_table(rows, (0.5, 1.0), "T", reference=ref)
        assert "cbase join (model)" in text
        assert "cbase join (paper)" in text

    def test_render_table_missing_cell_dash(self):
        rows = {"r": {0.5: 1.0}}
        text = render_table(rows, (0.5, 1.0), "T")
        assert "-" in text.splitlines()[-2]

    def test_render_series_and_csv(self):
        series = {"a": {0.0: 1.0, 1.0: 2.0}, "b": {0.0: 3.0, 1.0: 4.0}}
        text = render_series(series, (0.0, 1.0), "title")
        assert "title" in text and "a" in text and "b" in text
        csv = render_csv(series, (0.0, 1.0))
        lines = csv.splitlines()
        assert lines[0] == "zipf,a,b"
        assert lines[1].startswith("0.0,")


class TestExperiments:
    def test_figure1_structure(self, capsys):
        data = run_figure1(thetas=THETAS, n=TINY)
        for fig in ("fig1a", "fig1b"):
            assert set(data[fig]) == {"partition", "join"}
            assert set(data[fig]["join"]) == set(THETAS)
        assert "Figure 1a" in capsys.readouterr().out

    def test_figure4_structure(self, capsys):
        data = run_figure4(thetas=THETAS, n=TINY)
        assert set(data["fig4a"]) == {"cbase", "cbase-npj", "csh"}
        assert set(data["fig4b"]) == {"gbase", "gsh"}
        assert data["cpu_best"][1] > 0
        out = capsys.readouterr().out
        assert "max CPU speedup" in out

    def test_table1_covers_paper_rows(self, capsys):
        rows = run_table1(thetas=TABLE1_THETAS, n=TINY)
        assert set(rows) == set(TABLE1)
        assert "Table I" in capsys.readouterr().out

    def test_scaleup_small(self, capsys):
        data = run_scaleup(n=TINY * 2, theta=0.7)
        assert data["cpu_speedup"] > 0
        assert data["gpu_speedup"] > 0
        assert "Scale-up" in capsys.readouterr().out

    def test_detection_small(self, capsys):
        data = run_detection(n=TINY, theta=1.0, sample_rate=0.01)
        assert data["skewed_keys"] >= 1
        assert 0 < data["share"] <= 1
        assert "detected skewed keys" in capsys.readouterr().out


class TestCsvExport:
    def test_export_writes_when_env_set(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_OUTPUT", str(tmp_path))
        run_figure1(thetas=(0.0, 1.0), n=TINY)
        capsys.readouterr()
        fig1a = (tmp_path / "fig1a.csv").read_text()
        assert fig1a.splitlines()[0] == "zipf,partition,join"
        assert (tmp_path / "fig1b.csv").exists()

    def test_no_export_without_env(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_BENCH_OUTPUT", raising=False)
        run_figure1(thetas=(0.0,), n=TINY)
        capsys.readouterr()
        assert not list(tmp_path.iterdir())

    def test_table1_export(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_OUTPUT", str(tmp_path))
        run_table1(thetas=(0.5, 1.0), n=TINY)
        capsys.readouterr()
        text = (tmp_path / "table1.csv").read_text()
        assert "cbase join" in text
