"""Unit tests of the bench recorder, baseline IO, and regression gate."""

import json

import pytest

from repro.bench.regression import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    CaseBench,
    PhaseBench,
    bench_from_dict,
    bench_path,
    bench_to_dict,
    compare_benches,
    load_bench,
    record_bench,
    save_bench,
)
from repro.errors import BaselineError


def _record(tag="base", wall=0.1, backends=("scalar", "vector"),
            scalar_factor=5.0, counters=None):
    """A synthetic two-phase record for comparator tests."""
    phases = [
        PhaseBench(
            name=name,
            wall_seconds={b: (wall * scalar_factor if b == "scalar" else wall)
                          for b in backends},
            simulated_seconds=0.01,
            counters=dict(counters or {"hash_ops": 100}),
        )
        for name in ("partition", "join")
    ]
    return BenchRecord(tag=tag, n_tuples=1024, theta=1.0, seed=42,
                       repeats=3, backends=list(backends),
                       cases=[CaseBench(algorithm="cbase", output_count=10,
                                        output_checksum=11, phases=phases)])


def test_identical_records_pass():
    comparison = compare_benches(_record("base"), _record("cand"))
    assert comparison.ok
    assert comparison.regressions == []
    assert "OK" in comparison.render()


def test_injected_2x_slowdown_fails_the_gate():
    baseline = _record("base", wall=0.1)
    candidate = _record("cand", wall=0.2)  # 2x on every phase
    comparison = compare_benches(baseline, candidate)
    assert not comparison.ok
    assert len(comparison.regressions) == 2
    reg = comparison.regressions[0]
    assert reg.backend == "vector"
    assert reg.ratio == pytest.approx(2.0)
    assert "FAILED" in comparison.render()


def test_regression_within_threshold_passes():
    comparison = compare_benches(_record("base", wall=0.1),
                                 _record("cand", wall=0.12))
    assert comparison.ok


def test_absolute_floor_absorbs_micro_phases():
    # 3x slower, but only by half a millisecond — under the floor.
    comparison = compare_benches(_record("base", wall=0.00025),
                                 _record("cand", wall=0.00075))
    assert comparison.ok


def test_threshold_is_configurable():
    comparison = compare_benches(_record("base", wall=0.1),
                                 _record("cand", wall=0.12),
                                 threshold=0.05)
    assert not comparison.ok


def test_missing_algorithm_fails():
    candidate = _record("cand")
    candidate.cases[0].algorithm = "renamed"
    comparison = compare_benches(_record("base"), candidate)
    assert not comparison.ok
    assert comparison.missing


def test_counter_drift_is_informational():
    candidate = _record("cand", counters={"hash_ops": 999})
    comparison = compare_benches(_record("base"), candidate)
    assert comparison.ok
    assert comparison.counter_drift
    assert "note:" in comparison.render()


def test_speedup_is_reported():
    comparison = compare_benches(_record("base"),
                                 _record("cand", scalar_factor=6.0))
    assert comparison.candidate_speedup == pytest.approx(6.0)
    assert "speedup" in comparison.render()


def test_round_trip_through_disk(tmp_path):
    record = _record("seed")
    path = save_bench(record, bench_path("seed", tmp_path))
    assert path.name == "BENCH_seed.json"
    loaded = load_bench(path)
    assert bench_to_dict(loaded) == bench_to_dict(record)


def test_missing_baseline_is_typed_and_actionable(tmp_path):
    with pytest.raises(BaselineError) as excinfo:
        load_bench(tmp_path / "BENCH_seed.json")
    message = str(excinfo.value)
    assert "repro bench --record" in message
    assert "--tag seed" in message


def test_invalid_json_baseline_is_typed(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(BaselineError) as excinfo:
        load_bench(path)
    assert "re-record" in str(excinfo.value)


def test_old_schema_baseline_is_typed(tmp_path):
    data = bench_to_dict(_record("old"))
    data["schema_version"] = BENCH_SCHEMA_VERSION + 1
    path = tmp_path / "BENCH_old.json"
    path.write_text(json.dumps(data), encoding="utf-8")
    with pytest.raises(BaselineError) as excinfo:
        load_bench(path)
    assert str(BENCH_SCHEMA_VERSION) in str(excinfo.value)
    assert excinfo.value.context["found_version"] == BENCH_SCHEMA_VERSION + 1


def test_malformed_payload_is_typed():
    with pytest.raises(BaselineError):
        bench_from_dict({"schema_version": BENCH_SCHEMA_VERSION,
                         "tag": "x"}, source="unit")


def test_disjoint_backends_raise():
    baseline = _record("base", backends=("vector",))
    candidate = _record("cand", backends=("scalar",))
    with pytest.raises(BaselineError):
        compare_benches(baseline, candidate)


def test_record_bench_executes_and_cross_checks():
    record = record_bench("unit", n_tuples=512, repeats=1)
    assert record.n_tuples == 512
    assert record.worker_count >= 1
    assert {c.algorithm for c in record.cases} == {
        "cbase", "cbase-npj", "csh", "gbase", "gsh"}
    for case in record.cases:
        assert case.phases
        for phase in case.phases:
            assert set(phase.wall_seconds) == {"scalar", "vector", "parallel"}
            assert all(w >= 0 for w in phase.wall_seconds.values())
    assert record.median_speedup() is not None


def test_parallel_scaling_is_reported():
    baseline = _record("base", backends=("scalar", "vector", "parallel"))
    # The synthetic record prices parallel like vector -> scaling 1.0 over
    # the join/probe phases only.
    assert baseline.parallel_scaling() == pytest.approx(1.0)
    comparison = compare_benches(baseline,
                                 _record("cand",
                                         backends=("scalar", "vector",
                                                   "parallel")))
    assert comparison.parallel_scaling == pytest.approx(1.0)
    assert "parallel scaling" in comparison.render()


def test_comparison_to_dict_is_machine_readable():
    from repro.bench.regression import comparison_to_dict

    comparison = compare_benches(_record("base"), _record("cand", wall=0.2))
    payload = comparison_to_dict(comparison)
    assert payload["verdict"] == "failed"
    assert payload["gate"]["backend"] == "vector"
    assert len(payload["phase_deltas"]) == 2
    for delta in payload["phase_deltas"]:
        assert delta["ratio"] == pytest.approx(2.0)
    assert len(payload["regressions"]) == 2
    assert json.dumps(payload)  # round-trips through JSON


def test_committed_seed_baseline_loads():
    """The repository ships an active baseline for the CI gate."""
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    record = load_bench(bench_path("seed", repo_root))
    assert record.tag == "seed"
    assert record.median_speedup() >= 2.0
    assert {c.algorithm for c in record.cases} == {
        "cbase", "cbase-npj", "csh", "gbase", "gsh"}
