"""The spilled scale tier of the bench harness."""

from __future__ import annotations

import pytest

from repro.bench.regression import (
    bench_from_dict,
    bench_to_dict,
    compare_benches,
    record_bench,
)
from repro.faults.plan import SPILL_ALGORITHM_NAMES


@pytest.fixture(scope="module")
def spill_record():
    n = 2048
    budget = max(12 * 2 * n // 4, 1)
    return record_bench("spill-test", n_tuples=n, repeats=1,
                        backends=("scalar", "vector"),
                        spill_budget_bytes=budget)


def test_spill_tier_defaults_to_spill_capable_algorithms(spill_record):
    assert sorted(c.algorithm for c in spill_record.cases) == sorted(
        SPILL_ALGORITHM_NAMES)
    assert spill_record.spill_budget_bytes is not None


def test_spill_tier_round_trips_through_json(spill_record):
    data = bench_to_dict(spill_record)
    assert data["spill_budget_bytes"] == spill_record.spill_budget_bytes
    back = bench_from_dict(data)
    assert back.spill_budget_bytes == spill_record.spill_budget_bytes
    assert [c.algorithm for c in back.cases] == [
        c.algorithm for c in spill_record.cases]


def test_in_ram_baseline_without_the_key_still_loads(spill_record):
    data = bench_to_dict(spill_record)
    del data["spill_budget_bytes"]
    back = bench_from_dict(data)
    assert back.spill_budget_bytes is None


def test_spill_tier_gates_against_itself(spill_record):
    comparison = compare_benches(spill_record, spill_record)
    assert comparison.ok
    # The spilled tier keeps the in-RAM phase structure, so the gate
    # sees the usual phases — nothing extra, nothing missing.
    assert not comparison.missing


def test_spill_tier_phase_structure_matches_in_ram(spill_record):
    in_ram = record_bench("ram-test", n_tuples=2048, repeats=1,
                          backends=("scalar", "vector"),
                          algorithms=list(SPILL_ALGORITHM_NAMES))
    for ram_case, spill_case in zip(in_ram.cases, spill_record.cases):
        assert ram_case.algorithm == spill_case.algorithm
        assert [p.name for p in ram_case.phases] == [
            p.name for p in spill_case.phases]
        assert ram_case.output_count == spill_case.output_count
        assert ram_case.output_checksum == spill_case.output_checksum
