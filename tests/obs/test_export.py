"""Trace export: span dicts, JSON round-trips, JSONL artifacts."""

import json

import pytest

from repro.errors import ReproError
from repro.exec.counters import OpCounters
from repro.exec.result import JoinResult, PhaseResult
from repro.exec.serialize import (
    append_results_jsonl,
    result_from_dict,
    result_to_dict,
    results_from_jsonl,
    results_from_jsonl_file,
    results_to_jsonl,
)
from repro.obs.export import (
    read_jsonl,
    span_from_dict,
    span_to_dict,
    trace_from_dict,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
    write_jsonl,
)
from repro.obs.render import render_trace
from repro.obs.trace import Tracer


def sample_tracer():
    tracer = Tracer("gsh", algorithm="gsh", n_r=100, n_s=100)
    tracer.metrics.counter("join.tuples_scanned").inc(200)
    tracer.metrics.histogram("partition.sizes",
                             buckets=[10, 100]).observe_many([5, 50])
    with tracer.span("partition", algo="gsh") as part:
        with tracer.span("kernel:scatter", kind="kernel") as k:
            k.finish(simulated_seconds=0.25,
                     counters=OpCounters(tuple_moves=100), task_count=4)
        part.finish(simulated_seconds=0.5,
                    counters=OpCounters(tuple_moves=100))
    with tracer.span("join", algo="gsh") as join:
        join.finish(simulated_seconds=1.5,
                    counters=OpCounters(output_tuples=42), skewed_keys=2.0)
    return tracer


class TestSpanRoundTrip:
    def test_span_dict_round_trip_is_exact(self):
        record = sample_tracer().record()
        for span in record.spans:
            clone = span_from_dict(span_to_dict(span))
            assert clone.name == span.name
            assert clone.attrs == span.attrs
            assert clone.simulated_seconds == span.simulated_seconds
            assert clone.wall_seconds == span.wall_seconds
            assert clone.task_count == span.task_count
            assert clone.counters == span.counters
            assert clone.details == span.details
            assert len(clone.children) == len(span.children)

    def test_zero_counters_stored_sparsely(self):
        record = sample_tracer().record()
        data = span_to_dict(record.spans[1])
        assert data["counters"] == {"output_tuples": 42}

    def test_unfinished_parent_round_trips_child_sum(self):
        tracer = Tracer("t")
        with tracer.span("p"):
            with tracer.span("c") as c:
                c.finish(simulated_seconds=2.0)
        span = tracer.record().spans[0]
        clone = span_from_dict(span_to_dict(span))
        assert clone.simulated_seconds == 2.0


class TestTraceRoundTrip:
    def test_json_round_trip(self):
        record = sample_tracer().record()
        clone = trace_from_json(trace_to_json(record))
        assert clone.name == record.name
        assert clone.attrs == record.attrs
        assert clone.phase_names() == record.phase_names()
        assert clone.simulated_seconds == record.simulated_seconds
        assert clone.metrics == record.metrics
        assert clone.span("kernel:scatter").counters.tuple_moves == 100

    def test_unknown_version_rejected(self):
        data = trace_to_dict(sample_tracer().record())
        data["trace_format_version"] = 99
        with pytest.raises(ReproError):
            trace_from_dict(data)

    def test_rendering_survives_round_trip(self):
        record = sample_tracer().record()
        clone = trace_from_json(trace_to_json(record))
        text = render_trace(clone)
        assert "partition" in text
        assert "kernel:scatter" in text
        assert "partition.sizes" in text


class TestResultSerialization:
    @staticmethod
    def traced_result():
        tracer = sample_tracer()
        result = JoinResult(algorithm="gsh", n_r=100, n_s=100,
                            output_count=42, output_checksum=7)
        result.phases = [PhaseResult("partition", 0.5),
                         PhaseResult("join", 1.5)]
        result.trace = tracer.record()
        return result

    def test_result_dict_embeds_trace(self):
        result = self.traced_result()
        clone = result_from_dict(result_to_dict(result))
        assert clone.trace is not None
        assert clone.trace.phase_names() == ["partition", "join"]
        assert clone.trace.metrics == result.trace.metrics

    def test_result_without_trace_has_no_trace_key(self):
        result = JoinResult(algorithm="x", n_r=1, n_s=1,
                            output_count=0, output_checksum=0)
        data = result_to_dict(result)
        assert "trace" not in data
        assert result_from_dict(data).trace is None

    def test_jsonl_round_trip(self):
        results = [self.traced_result(), self.traced_result()]
        clones = results_from_jsonl(results_to_jsonl(results))
        assert len(clones) == 2
        for clone in clones:
            assert clone.algorithm == "gsh"
            assert clone.trace.simulated_seconds == pytest.approx(2.0)

    def test_jsonl_file_append_accumulates(self, tmp_path):
        path = tmp_path / "artifacts" / "traces.jsonl"
        append_results_jsonl([self.traced_result()], path)
        append_results_jsonl([self.traced_result()], path)
        clones = results_from_jsonl_file(path)
        assert len(clones) == 2
        # One valid JSON object per line.
        for line in path.read_text().splitlines():
            json.loads(line)


class TestRawJsonl:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "x.jsonl"
        assert write_jsonl([{"a": 1}, {"b": 2}], path) == 2
        assert read_jsonl(path) == [{"a": 1}, {"b": 2}]

    def test_bad_line_reports_position(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ReproError, match=":2:"):
            read_jsonl(path)
