"""Tracer and span semantics: nesting, finish contract, counter deltas."""

import pytest

from repro.errors import ConfigError, ExecutionError
from repro.exec.counters import OpCounters
from repro.exec.result import JoinResult, PhaseResult
from repro.obs.trace import (
    NullTracer,
    Span,
    TraceRecord,
    Tracer,
    activate,
    current_tracer,
    tracing,
    verify_result_trace,
)


class TestSpanBasics:
    def test_finish_records_everything(self):
        tracer = Tracer("t")
        with tracer.span("build", algo="x") as span:
            span.finish(simulated_seconds=1.5,
                        counters=OpCounters(hash_ops=7),
                        task_count=3, foo=2.0)
        assert span.simulated_seconds == 1.5
        assert span.counters.hash_ops == 7
        assert span.task_count == 3
        assert span.details["foo"] == 2.0
        assert span.attrs == {"algo": "x"}
        assert span.wall_seconds >= 0

    def test_unfinished_leaf_span_raises(self):
        tracer = Tracer("t")
        with pytest.raises(ExecutionError):
            with tracer.span("p"):
                pass

    def test_negative_simulated_time_rejected(self):
        tracer = Tracer("t")
        with pytest.raises(ExecutionError):
            with tracer.span("p") as span:
                span.finish(simulated_seconds=-0.5)

    def test_exceptions_propagate_unmasked(self):
        tracer = Tracer("t")
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("p"):
                raise RuntimeError("boom")
        # The broken span is still on the tree (with its wall time) so a
        # partial trace remains inspectable.
        assert tracer.spans[0].name == "p"

    def test_phase_result_conversion(self):
        tracer = Tracer("t")
        with tracer.span("join") as span:
            span.finish(simulated_seconds=2.0,
                        counters=OpCounters(output_tuples=5), task_count=4)
        phase = span.phase_result
        assert isinstance(phase, PhaseResult)
        assert phase.name == "join"
        assert phase.simulated_seconds == 2.0
        assert phase.counters.output_tuples == 5
        assert phase.task_count == 4

    def test_phase_result_before_finish_raises(self):
        span = Span("pending")
        with pytest.raises(ExecutionError):
            span.phase_result


class TestNesting:
    def test_children_attach_to_innermost_open_span(self):
        tracer = Tracer("t")
        with tracer.span("phase") as parent:
            with tracer.span("kernel:a") as a:
                a.finish(simulated_seconds=1.0)
            with tracer.span("kernel:b") as b:
                with tracer.span("kernel:b.inner") as inner:
                    inner.finish(simulated_seconds=0.25)
                b.finish(simulated_seconds=0.5)
            parent.finish(simulated_seconds=2.0)
        assert [c.name for c in parent.children] == ["kernel:a", "kernel:b"]
        assert [c.name for c in b.children] == ["kernel:b.inner"]
        assert len(tracer.spans) == 1

    def test_parent_without_finish_sums_children(self):
        tracer = Tracer("t")
        with tracer.span("phase"):
            with tracer.span("a") as a:
                a.finish(simulated_seconds=1.0)
            with tracer.span("b") as b:
                b.finish(simulated_seconds=0.5)
        assert tracer.spans[0].simulated_seconds == pytest.approx(1.5)

    def test_explicit_finish_overrides_child_sum(self):
        tracer = Tracer("t")
        with tracer.span("phase") as parent:
            with tracer.span("a") as a:
                a.finish(simulated_seconds=1.0)
            parent.finish(simulated_seconds=3.0)
        assert parent.simulated_seconds == 3.0

    def test_counter_deltas_per_span(self):
        tracer = Tracer("t")
        with tracer.span("phase") as parent:
            with tracer.span("a") as a:
                a.finish(simulated_seconds=1.0,
                         counters=OpCounters(tuple_moves=10))
            with tracer.span("b") as b:
                b.finish(simulated_seconds=1.0,
                         counters=OpCounters(tuple_moves=4, hash_ops=2))
            parent.finish(
                simulated_seconds=2.0,
                counters=OpCounters.sum(c.counters for c in parent.children),
            )
        assert parent.counters.tuple_moves == 14
        assert parent.counters.hash_ops == 2
        # Child spans keep their own deltas, not the rollup.
        assert parent.children[0].counters.tuple_moves == 10

    def test_walk_yields_depth_first(self):
        tracer = Tracer("t")
        with tracer.span("p"):
            with tracer.span("c1") as c1:
                with tracer.span("g") as g:
                    g.finish(simulated_seconds=0.0)
                c1.finish(simulated_seconds=0.0)
            with tracer.span("c2") as c2:
                c2.finish(simulated_seconds=0.0)
        record = tracer.record()
        walked = [(depth, span.name) for depth, span in record.walk()]
        assert walked == [(0, "p"), (1, "c1"), (2, "g"), (1, "c2")]


class TestTracerRecord:
    def test_record_includes_metrics_snapshot(self):
        tracer = Tracer("run", algorithm="csh")
        tracer.metrics.counter("join.tuples_scanned").inc(8)
        with tracer.span("p") as span:
            span.finish(simulated_seconds=1.0)
        record = tracer.record()
        assert record.name == "run"
        assert record.attrs["algorithm"] == "csh"
        assert record.metrics["join.tuples_scanned"]["value"] == 8
        assert record.phase_names() == ["p"]
        assert record.simulated_seconds == 1.0

    def test_record_with_open_span_raises(self):
        tracer = Tracer("t")
        with tracer.span("p") as span:
            with pytest.raises(ExecutionError):
                tracer.record()
            span.finish(simulated_seconds=0.0)

    def test_record_span_lookup(self):
        tracer = Tracer("t")
        with tracer.span("phase"):
            with tracer.span("kernel:x") as k:
                k.finish(simulated_seconds=0.125)
        record = tracer.record()
        assert record.span("kernel:x").simulated_seconds == 0.125
        with pytest.raises(KeyError):
            record.span("missing")

    def test_from_phases_builds_flat_trace(self):
        phases = [PhaseResult("a", 1.0, OpCounters(hash_ops=1)),
                  PhaseResult("b", 2.0)]
        record = TraceRecord.from_phases("cbase", phases, theta=0.9)
        assert record.phase_names() == ["a", "b"]
        assert record.simulated_seconds == pytest.approx(3.0)
        assert record.attrs == {"algorithm": "cbase", "theta": 0.9}
        assert record.span("a").counters.hash_ops == 1


class TestActivation:
    def test_current_tracer_defaults_to_null(self):
        assert isinstance(current_tracer(), NullTracer)

    def test_activate_installs_and_restores(self):
        tracer = Tracer("mine")
        with activate(tracer):
            assert current_tracer() is tracer
            with tracing("inner") as inner:
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert isinstance(current_tracer(), NullTracer)

    def test_null_tracer_retains_nothing(self):
        tracer = current_tracer()
        with tracer.span("p") as span:
            span.finish(simulated_seconds=1.0)
        assert isinstance(tracer, NullTracer)
        assert tracer.spans == []

    def test_null_tracer_still_enforces_finish(self):
        with pytest.raises(ExecutionError):
            with current_tracer().span("p"):
                pass


class TestVerifyResultTrace:
    @staticmethod
    def result_with_trace(phase_seconds, trace_seconds):
        result = JoinResult(algorithm="alg", n_r=1, n_s=1,
                            output_count=0, output_checksum=0)
        result.phases = [PhaseResult("p", s) for s in phase_seconds]
        tracer = Tracer("alg")
        for i, s in enumerate(trace_seconds):
            with tracer.span(f"p{i}") as span:
                span.finish(simulated_seconds=s)
        result.trace = tracer.record()
        return result

    def test_matching_sums_pass(self):
        result = self.result_with_trace([1.0, 2.0], [1.0, 2.0])
        assert verify_result_trace(result) is None

    def test_mismatched_sums_fail(self):
        result = self.result_with_trace([1.0, 2.0], [1.0, 2.5])
        error = verify_result_trace(result)
        assert error is not None and "alg" in error

    def test_missing_trace_fails(self):
        result = JoinResult(algorithm="alg", n_r=1, n_s=1,
                            output_count=0, output_checksum=0)
        assert "no trace" in verify_result_trace(result)

    def test_tolerance_is_relative(self):
        big = 1e6
        result = self.result_with_trace([big], [big * (1 + 1e-9)])
        assert verify_result_trace(result) is None
        result = self.result_with_trace([big], [big * (1 + 1e-3)])
        assert verify_result_trace(result) is not None


class TestMetricGuards:
    def test_counter_rejects_decrease(self):
        tracer = Tracer("t")
        with pytest.raises(ConfigError):
            tracer.metrics.counter("c").inc(-1)
