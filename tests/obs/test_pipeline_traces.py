"""Integration: every pipeline emits a consistent, named trace."""

import pytest

from repro.api import make_join
from repro.bench import runner
from repro.cpu.threads import ThreadPool
from repro.data.zipf import ZipfWorkload
from repro.exec.counters import OpCounters
from repro.exec.serialize import results_from_jsonl_file
from repro.gpu.kernel import BlockWork
from repro.gpu.simulator import GPUSimulator
from repro.obs.trace import Tracer, activate, tracing, verify_result_trace

#: Root span names each pipeline must emit, in order.
EXPECTED_PHASES = {
    "cbase": ["partition", "join"],
    "cbase-npj": ["build", "probe"],
    "csh": ["sample", "partition", "nm-join"],
    "gbase": ["partition", "join"],
    "gsh": ["partition", "detect", "split", "nm-join", "skew-join"],
}


@pytest.fixture(scope="module")
def skewed_input():
    return ZipfWorkload(12000, 12000, theta=1.0, seed=7).generate()


@pytest.fixture(scope="module")
def traced_results(skewed_input):
    return {name: make_join(name).run(skewed_input)
            for name in EXPECTED_PHASES}


@pytest.mark.parametrize("algorithm", sorted(EXPECTED_PHASES))
class TestPipelineTraces:
    def test_expected_phase_names(self, traced_results, algorithm):
        trace = traced_results[algorithm].trace
        assert trace is not None
        assert trace.phase_names() == EXPECTED_PHASES[algorithm]

    def test_trace_sums_match_reported_total(self, traced_results, algorithm):
        assert verify_result_trace(traced_results[algorithm]) is None

    def test_trace_mirrors_phase_breakdown(self, traced_results, algorithm):
        result = traced_results[algorithm]
        for phase in result.phases:
            span = result.trace.span(phase.name)
            assert span.simulated_seconds == phase.simulated_seconds
            assert span.counters == phase.counters

    def test_common_metrics_published(self, traced_results, algorithm):
        result = traced_results[algorithm]
        metrics = result.trace.metrics
        n = result.n_r + result.n_s
        assert metrics["join.tuples_scanned"]["value"] == n
        assert (metrics["join.output_tuples"]["value"]
                == result.output_count)

    def test_trace_attrs_identify_run(self, traced_results, algorithm):
        attrs = traced_results[algorithm].trace.attrs
        assert attrs["algorithm"] == algorithm
        assert attrs["n_r"] == traced_results[algorithm].n_r


class TestGpuKernelSpans:
    def test_gpu_phases_nest_kernel_spans(self, traced_results):
        trace = traced_results["gsh"].trace
        partition = trace.span("partition")
        kernels = [c for c in partition.children
                   if c.name.startswith("kernel:")]
        assert len(kernels) >= 2
        assert all(c.attrs.get("kind") == "kernel" for c in kernels)
        # Kernels serialize on one stream: the phase time is their sum.
        assert (sum(k.simulated_seconds for k in kernels)
                == pytest.approx(partition.simulated_seconds))

    def test_kernel_launch_metrics(self, traced_results):
        metrics = traced_results["gbase"].trace.metrics
        assert metrics["gpu.kernel_launches"]["value"] > 0
        assert metrics["gpu.blocks_dispatched"]["value"] > 0

    def test_simulator_publishes_to_active_tracer(self):
        sim = GPUSimulator()
        with tracing("standalone") as tracer:
            sim.launch("probe", [BlockWork(4, OpCounters(hash_ops=100))])
        record = tracer.record()
        span = record.span("kernel:probe")
        assert span.task_count == 4
        assert record.metrics["gpu.kernel_launches"]["value"] == 1


class TestThreadPoolMetrics:
    def test_queue_phase_publishes_imbalance(self):
        pool = ThreadPool(n_threads=4)
        tasks = [OpCounters(hash_ops=1000)] * 3
        with tracing("pool") as tracer:
            schedule = pool.queue_phase_seconds(tasks)
        metrics = tracer.record().metrics
        assert metrics["threadpool.queue_phases"]["value"] == 1
        assert metrics["threadpool.tasks_dispatched"]["value"] == 3
        hist = metrics["threadpool.idle_fraction"]
        assert hist["count"] == 1
        assert hist["max"] == pytest.approx(schedule.idle_fraction)

    def test_static_phase_publishes_imbalance(self):
        pool = ThreadPool(n_threads=2)
        with tracing("pool") as tracer:
            pool.static_phase_seconds([OpCounters(hash_ops=100),
                                       OpCounters(hash_ops=300)])
        metrics = tracer.record().metrics
        assert metrics["threadpool.static_phases"]["value"] == 1
        # Makespan 300c, busy 400c of 600c capacity: one third idle.
        assert metrics["threadpool.idle_fraction"]["max"] == pytest.approx(1 / 3)

    def test_cpu_pipeline_records_taskqueue_metrics(self, traced_results):
        metrics = traced_results["cbase"].trace.metrics
        assert metrics["threadpool.tasks_dispatched"]["value"] > 0
        assert metrics["threadpool.idle_fraction"]["count"] > 0
        assert "partition.sizes" in metrics


class TestSkewMetrics:
    def test_csh_reports_detected_keys(self, traced_results):
        result = traced_results["csh"]
        metrics = result.trace.metrics
        assert (metrics["skew.keys_detected"]["value"]
                == result.meta["skewed_keys"])
        assert metrics["skew.tuples_diverted"]["value"] == (
            result.meta["skewed_r_tuples"] + result.meta["skewed_s_tuples"]
        )

    def test_gsh_reports_detected_keys(self, traced_results):
        result = traced_results["gsh"]
        metrics = result.trace.metrics
        assert (metrics["skew.keys_detected"]["value"]
                == len(result.meta["skewed_keys"]))


class TestRunsAreIsolated:
    def test_back_to_back_runs_get_fresh_traces(self, skewed_input):
        join = make_join("cbase")
        first = join.run(skewed_input)
        second = join.run(skewed_input)
        assert first.trace is not second.trace
        assert (first.trace.metrics["join.tuples_scanned"]["value"]
                == second.trace.metrics["join.tuples_scanned"]["value"])

    def test_pipeline_does_not_leak_into_ambient_tracer(self, skewed_input):
        outer = Tracer("outer")
        with activate(outer):
            make_join("cbase").run(skewed_input)
        # The pipeline activated its own tracer; the outer one saw nothing.
        assert outer.spans == []
        assert len(outer.metrics) == 0


class TestBenchArtifacts:
    def test_run_algorithm_emits_jsonl_artifact(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        runner.clear_caches()
        try:
            result = runner.run_algorithm("csh", 4096, 0.75)
        finally:
            runner.clear_caches()
        assert result.trace is not None
        artifact = tmp_path / "traces.jsonl"
        assert artifact.exists()
        (clone,) = results_from_jsonl_file(artifact)
        assert clone.algorithm == "csh"
        assert verify_result_trace(clone) is None
        assert clone.trace.attrs["theta"] == 0.75

    def test_cache_hit_does_not_duplicate_artifact(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        runner.clear_caches()
        try:
            runner.run_algorithm("cbase", 4096, 0.5)
            runner.run_algorithm("cbase", 4096, 0.5)
        finally:
            runner.clear_caches()
        assert len(results_from_jsonl_file(tmp_path / "traces.jsonl")) == 1
