"""MetricsRegistry: counters, gauges, histograms, snapshots."""

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc(3)
        assert reg.counter("a") is c
        assert reg.counter("a").value == 3

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")
        with pytest.raises(ConfigError):
            reg.histogram("x")

    def test_contains_len_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert "a" in reg and "b" in reg and "c" not in reg
        assert len(reg) == 2
        assert reg.names() == ["a", "b"]

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("jobs").inc(2)
        reg.gauge("imbalance").set(0.25)
        reg.histogram("sizes", buckets=[1, 10, 100]).observe_many([5, 500])
        snap = reg.snapshot()
        assert snap["jobs"] == {"kind": "counter", "value": 2}
        assert snap["imbalance"] == {"kind": "gauge", "value": 0.25}
        hist = snap["sizes"]
        assert hist["kind"] == "histogram"
        assert hist["count"] == 2
        assert hist["sum"] == 505.0
        assert hist["min"] == 5.0 and hist["max"] == 500.0
        # 5 lands in the <=10 and <=100 cumulative buckets; 500 in none.
        assert hist["buckets"] == {"1": 0, "10": 1, "100": 1}


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.counter("n").inc(9)
        assert reg.counter("n").value == 10

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.counter("n").inc(-2)

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.5)
        reg.gauge("g").set(-3.0)
        assert reg.gauge("g").value == -3.0


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("h", bucket_bounds=[1.0, 2.0, 4.0])
        h.observe_many([0.5, 2.0, 8.0])
        assert h.count == 3
        assert h.total == 10.5
        assert h.min == 0.5 and h.max == 8.0
        assert h.mean == pytest.approx(3.5)

    def test_cumulative_buckets(self):
        h = Histogram("h", bucket_bounds=[1.0, 2.0, 4.0])
        h.observe_many([0.5, 2.0, 8.0])
        # 0.5 <= every bound; 2.0 <= 2.0 and 4.0; 8.0 beyond all bounds.
        assert h.bucket_counts == [1, 2, 2]

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigError):
            Histogram("h", bucket_bounds=[4.0, 1.0])

    def test_empty_histogram_snapshot(self):
        snap = Histogram("h", bucket_bounds=[1.0]).snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None

    def test_default_buckets_cover_paper_scale(self):
        assert DEFAULT_BUCKETS[0] == 1.0
        assert DEFAULT_BUCKETS[-1] >= 2 ** 30
