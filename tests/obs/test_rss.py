"""RSS sampling and the peak-RSS stamp on join results."""

import numpy as np
import pytest

from repro.api import make_join
from repro.data.generators import uniform_input
from repro.exec.differential import compare_results
from repro.obs import current_rss_bytes, peak_rss_bytes, reset_peak_rss


def test_rss_sources_report_plausible_bytes():
    peak = peak_rss_bytes()
    current = current_rss_bytes()
    # A live CPython-with-numpy process is at least a few MiB resident.
    assert peak >= current > 1 << 20
    # High-water mark never shrinks across consecutive samples.
    assert peak_rss_bytes() >= peak


def test_reset_peak_rss_drops_the_high_water_mark():
    ballast = np.ones(1 << 22, dtype=np.uint8)  # push the mark up 4 MiB
    ballast[::4096] = 2  # touch every page
    before = peak_rss_bytes()
    del ballast
    if not reset_peak_rss():
        pytest.skip("clear_refs denied here; reset is best effort")
    assert peak_rss_bytes() <= before


def test_pipelines_stamp_peak_rss_and_comparison_ignores_it():
    join_input = uniform_input(200, 800, seed=3)
    a = make_join("cbase-npj").run(join_input)
    b = make_join("cbase-npj").run(join_input)
    assert a.meta["peak_rss_bytes"] > 0
    # The stamp is a per-process measurement, not part of the answer:
    # bit-identity comparison must tolerate arbitrary divergence.
    b.meta["peak_rss_bytes"] = a.meta["peak_rss_bytes"] + 12345
    assert compare_results(a, b) == []
