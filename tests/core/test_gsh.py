"""Tests for GSH: detection, split, skew join kernel, pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.gsh import (
    GSHConfig,
    GSHJoin,
    detect_partition_skew,
    find_large_partitions,
    skew_join_phase,
    split_large_partitions,
)
from repro.core.gsh.split import SkewedArrays
from repro.cpu.hashing import hash_keys
from repro.cpu.partition import partition_pass
from repro.data.generators import constant_key_input, uniform_input
from repro.data.zipf import ZipfWorkload
from repro.errors import ConfigError
from repro.gpu.device import A100
from repro.gpu.gbase import GbaseJoin
from repro.gpu.simulator import GPUSimulator
from tests.conftest import assert_result_correct


def partition_input(ji, bits=3):
    pr = partition_pass(ji.r.keys, ji.r.payloads, hash_keys(ji.r.keys),
                        0, bits, 1).partitioned
    ps = partition_pass(ji.s.keys, ji.s.payloads, hash_keys(ji.s.keys),
                        0, bits, 1).partitioned
    return pr, ps


class TestDetection:
    def test_find_large_partitions_by_either_side(self):
        ji = constant_key_input(10000, 10, seed=0)
        pr, ps = partition_input(ji)
        large = find_large_partitions(pr, ps, threshold_tuples=5000)
        assert large.size == 1  # only the dominant key's partition

    def test_no_large_partitions_on_uniform(self):
        ji = uniform_input(8000, 8000, seed=1)
        pr, ps = partition_input(ji)
        large = find_large_partitions(pr, ps, threshold_tuples=5000)
        assert large.size == 0

    def test_detects_dominant_key(self):
        ji = constant_key_input(20000, 20000, key=123, seed=0)
        pr, ps = partition_input(ji)
        det = detect_partition_skew(pr, ps, threshold_tuples=5000,
                                    sample_rate=0.05, top_k=3)
        assert det.n_large == 1
        assert 123 in det.all_skewed_keys().tolist()

    def test_top_k_bounds_keys_per_partition(self):
        ji = ZipfWorkload(40000, 40000, theta=1.0, seed=3).generate()
        pr, ps = partition_input(ji)
        det = detect_partition_skew(pr, ps, threshold_tuples=1000,
                                    sample_rate=0.05, top_k=2)
        for info in det.per_partition:
            assert info.skewed_keys.size <= 2

    def test_validation(self):
        ji = uniform_input(100, 100, seed=0)
        pr, ps = partition_input(ji)
        with pytest.raises(ConfigError):
            detect_partition_skew(pr, ps, threshold_tuples=0)
        with pytest.raises(ConfigError):
            detect_partition_skew(pr, ps, threshold_tuples=10,
                                  sample_rate=0.0)
        with pytest.raises(ConfigError):
            detect_partition_skew(pr, ps, threshold_tuples=10, top_k=0)


class TestSplit:
    def test_split_preserves_tuples(self):
        ji = constant_key_input(9000, 8000, key=5, seed=0)
        pr, ps = partition_input(ji)
        det = detect_partition_skew(pr, ps, threshold_tuples=2000,
                                    sample_rate=0.05, top_k=3)
        split = split_large_partitions(pr, ps, det, top_k=3)
        moved_r = split.skewed_r.total_tuples()
        assert moved_r + split.normal_r.n == 9000
        assert split.skewed_s.total_tuples() + split.normal_s.n == 8000
        assert split.skewed_r.size_of(5) > 0

    def test_split_counters_track_copied_tuples(self):
        ji = constant_key_input(9000, 8000, key=5, seed=0)
        pr, ps = partition_input(ji)
        det = detect_partition_skew(pr, ps, threshold_tuples=2000,
                                    sample_rate=0.05)
        split = split_large_partitions(pr, ps, det, top_k=3)
        assert split.counters.tuple_moves >= 9000  # large partitions rewritten

    def test_no_large_partitions_means_noop(self):
        ji = uniform_input(4000, 4000, seed=2)
        pr, ps = partition_input(ji)
        det = detect_partition_skew(pr, ps, threshold_tuples=100000)
        split = split_large_partitions(pr, ps, det, top_k=3)
        assert split.skewed_r.total_tuples() == 0
        assert split.normal_r.n == 4000
        assert split.block_work == []


class TestSkewJoinKernel:
    def test_joins_matching_keys_only(self):
        sim = GPUSimulator(device=A100)
        skewed_r = SkewedArrays({7: np.array([1, 2], np.uint32),
                                 9: np.array([3], np.uint32)})
        skewed_s = SkewedArrays({7: np.array([10, 20, 30], np.uint32)})
        res = skew_join_phase(skewed_r, skewed_s, sim)
        assert res.summary.count == 6  # 2 R tuples x 3 S tuples for key 7
        assert res.joined_keys == [7]
        assert res.n_blocks == 2  # one block per R tuple of key 7

    def test_empty_arrays(self):
        sim = GPUSimulator(device=A100)
        res = skew_join_phase(SkewedArrays(), SkewedArrays(), sim)
        assert res.summary.count == 0
        assert res.n_blocks == 0

    def test_bandwidth_bound_cost(self):
        sim = GPUSimulator(device=A100)
        n = 100000
        skewed_r = SkewedArrays({1: np.arange(n, dtype=np.uint32)})
        skewed_s = SkewedArrays({1: np.arange(n, dtype=np.uint32)})
        res = skew_join_phase(skewed_r, skewed_s, sim)
        pairs = n * n
        floor = pairs * 16 / sim.cost_model.effective_bandwidth
        assert res.seconds >= floor * 0.5
        assert res.summary.count == pairs


class TestGSHPipeline:
    def test_correct_on_fixtures(self, small_uniform, small_skewed,
                                 tiny_input):
        for ji in (small_uniform, small_skewed, tiny_input):
            assert_result_correct(GSHJoin().run(ji), ji)

    def test_phases(self, small_uniform):
        res = GSHJoin().run(small_uniform)
        assert [p.name for p in res.phases] == [
            "partition", "detect", "split", "nm-join", "skew-join"]

    def test_matches_gbase_exactly(self):
        for theta in (0.0, 0.7, 1.0):
            ji = ZipfWorkload(30000, 30000, theta=theta, seed=6).generate()
            assert GSHJoin().run(ji).matches(GbaseJoin().run(ji))

    def test_beats_gbase_under_heavy_skew(self):
        ji = ZipfWorkload(120000, 120000, theta=1.0, seed=7).generate()
        gsh = GSHJoin().run(ji)
        gbase = GbaseJoin().run(ji)
        assert gsh.matches(gbase)
        assert gbase.simulated_seconds > 3 * gsh.simulated_seconds

    def test_comparable_at_low_skew(self):
        """Section V-B: at zipf 0-0.4 no partition is large, the skew steps
        are unused, and GSH ~ Gbase."""
        ji = ZipfWorkload(120000, 120000, theta=0.2, seed=7).generate()
        gsh = GSHJoin().run(ji)
        gbase = GbaseJoin().run(ji)
        assert gsh.meta["large_partitions"] == 0
        # At this reduced scale the partition phases' different cost
        # profiles dominate the total, so the band is wider than the
        # paper-scale parity (verified at 32 M by benchmarks/bench_table1).
        ratio = gsh.simulated_seconds / gbase.simulated_seconds
        assert 0.5 < ratio < 1.8

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            GSHConfig(sample_rate=0)
        with pytest.raises(ConfigError):
            GSHConfig(top_k=0)
        with pytest.raises(ConfigError):
            GSHConfig(large_partition_factor=0)


@given(st.integers(0, 2**32 - 1), st.floats(0.0, 1.0))
@settings(max_examples=15, deadline=None)
def test_gsh_always_agrees_with_gbase(seed, theta):
    ji = ZipfWorkload(3000, 3000, theta=theta, seed=seed).generate()
    assert GSHJoin().run(ji).matches(GbaseJoin().run(ji))


class TestAdaptiveK:
    def test_adaptive_k_correct_and_supersets_fixed(self):
        ji = constant_key_input(40000, 40000, key=9, seed=4)
        fixed = GSHJoin(GSHConfig(top_k=1)).run(ji)
        adaptive = GSHJoin(GSHConfig(top_k=1, adaptive_k=True)).run(ji)
        assert adaptive.matches(fixed)
        assert (set(fixed.meta["skewed_keys"])
                <= set(adaptive.meta["skewed_keys"]))

    def test_adaptive_k_strips_more_under_many_hot_keys(self):
        """With several comparably hot keys per partition, the fixed top-1
        leaves heavy keys behind; adaptive-k keeps stripping until the
        remainder fits."""
        from repro.data.generators import input_from_frequencies
        freqs = [30000] * 8 + [1] * 64
        ji = input_from_frequencies(freqs, freqs, seed=5)
        # A single partition forces all eight hot keys to share it.
        fixed = GSHJoin(GSHConfig(top_k=1, bits_pass1=0,
                                  bits_pass2=0)).run(ji)
        adaptive = GSHJoin(GSHConfig(top_k=1, adaptive_k=True,
                                     bits_pass1=0, bits_pass2=0)).run(ji)
        assert adaptive.matches(fixed)
        assert (len(adaptive.meta["skewed_keys"])
                > len(fixed.meta["skewed_keys"]))
        # stripping the extra hot keys shrinks the NM-join phase
        assert (adaptive.phase("nm-join").simulated_seconds
                < fixed.phase("nm-join").simulated_seconds)

    def test_adaptive_k_validation(self):
        with pytest.raises(ConfigError):
            GSHConfig(top_k=5, adaptive_k=True, max_k=2)

    def test_detector_adaptive_flag(self):
        ji = constant_key_input(30000, 30000, seed=6)
        pr, ps = partition_input(ji)
        det = detect_partition_skew(pr, ps, threshold_tuples=2000,
                                    sample_rate=0.05, top_k=1,
                                    adaptive_k=True)
        assert det.n_large >= 1
        with pytest.raises(ConfigError):
            detect_partition_skew(pr, ps, threshold_tuples=2000,
                                  top_k=5, adaptive_k=True, max_k=2)
