"""Tests for CSH: detection, checkup table, hybrid partition, pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.csh import (
    CSHConfig,
    CSHJoin,
    SkewCheckupTable,
    SkewedPartitionSet,
    detect_skewed_keys,
)
from repro.cpu.radix_join import CbaseJoin
from repro.data.generators import (
    constant_key_input,
    input_from_frequencies,
    uniform_input,
)
from repro.data.zipf import ZipfWorkload
from repro.errors import ConfigError
from repro.exec.counters import OpCounters
from tests.conftest import assert_result_correct


class TestCheckupTable:
    def test_lookup_hits_and_misses(self):
        table = SkewCheckupTable(np.array([10, 20, 30], dtype=np.uint32))
        ids = table.lookup(np.array([20, 5, 30, 31], dtype=np.uint32))
        assert ids.tolist() == [1, -1, 2, -1]

    def test_lookup_counts_probe_work(self):
        table = SkewCheckupTable(np.array([1], dtype=np.uint32))
        c = OpCounters()
        table.lookup(np.arange(10, dtype=np.uint32), counters=c)
        assert c.hash_ops == 10
        assert c.key_compares == 10

    def test_empty_table_all_normal(self):
        table = SkewCheckupTable(np.empty(0, dtype=np.uint32))
        ids = table.lookup(np.arange(5, dtype=np.uint32))
        assert np.all(ids == -1)

    def test_duplicate_skew_keys_deduped(self):
        table = SkewCheckupTable(np.array([7, 7, 7], dtype=np.uint32))
        assert len(table) == 1
        assert table.part_id_of(7) == 0


class TestSkewedPartitionSet:
    def test_fill_groups_by_part_id(self):
        s = SkewedPartitionSet(3)
        pids = np.array([2, 0, 2, 0], dtype=np.int64)
        keys = np.array([9, 5, 9, 5], dtype=np.uint32)
        pays = np.array([1, 2, 3, 4], dtype=np.uint32)
        s.fill(pids, keys, pays)
        assert s.size_of(0) == 2
        assert s.size_of(1) == 0
        assert s.size_of(2) == 2
        assert sorted(s.payloads[0].tolist()) == [2, 4]
        assert s.total_tuples() == 4

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            SkewedPartitionSet(-1)


class TestDetection:
    def test_detects_heavy_key(self):
        # key 0 occupies half the table; a 10% sample must see it >= 2 times
        ji = input_from_frequencies([5000, *([1] * 5000)],
                                    [1, *([1] * 5000)], seed=0)
        det = detect_skewed_keys(ji.r.keys, sample_rate=0.1,
                                 freq_threshold=2, seed=1)
        assert 0 in det.skewed_keys.tolist()

    def test_uniform_input_detects_few(self):
        keys = np.random.default_rng(0).permutation(
            np.arange(20000)).astype(np.uint32)
        det = detect_skewed_keys(keys, sample_rate=0.01, freq_threshold=2)
        assert det.n_skewed <= 5  # only unlucky sample collisions

    def test_sample_size_and_counters(self):
        keys = np.arange(1000, dtype=np.uint32)
        det = detect_skewed_keys(keys, sample_rate=0.05)
        assert det.sample_size == 50
        assert det.counters.sample_ops == 50

    def test_max_skewed_caps_result(self):
        keys = np.repeat(np.arange(10, dtype=np.uint32), 100)
        det = detect_skewed_keys(keys, sample_rate=0.5, freq_threshold=2,
                                 max_skewed=3)
        assert det.n_skewed <= 3

    def test_validation(self):
        keys = np.arange(10, dtype=np.uint32)
        with pytest.raises(ConfigError):
            detect_skewed_keys(keys, sample_rate=0.0)
        with pytest.raises(ConfigError):
            detect_skewed_keys(keys, freq_threshold=0)


class TestCSHPipeline:
    def test_correct_on_fixtures(self, small_uniform, small_skewed,
                                 tiny_input):
        for ji in (small_uniform, small_skewed, tiny_input):
            assert_result_correct(CSHJoin().run(ji), ji)

    def test_phases(self, small_uniform):
        res = CSHJoin().run(small_uniform)
        assert [p.name for p in res.phases] == ["sample", "partition",
                                                "nm-join"]

    def test_matches_cbase_exactly(self):
        for theta in (0.0, 0.6, 1.0):
            ji = ZipfWorkload(20000, 20000, theta=theta, seed=8).generate()
            assert CSHJoin().run(ji).matches(CbaseJoin().run(ji))

    def test_full_skew_handled_in_partition_phase(self):
        """With one dominant key, nearly all output comes from the hybrid
        partition phase, not NM-join."""
        ji = constant_key_input(5000, 5000, seed=1)
        res = CSHJoin(CSHConfig(sample_rate=0.05)).run(ji)
        assert_result_correct(res, ji)
        assert res.meta["skewed_output"] == res.output_count
        assert res.meta["skewed_keys"] >= 1

    def test_beats_cbase_under_heavy_skew(self):
        ji = ZipfWorkload(60000, 60000, theta=1.0, seed=4).generate()
        csh = CSHJoin().run(ji)
        cbase = CbaseJoin().run(ji)
        assert csh.matches(cbase)
        assert cbase.simulated_seconds > 3 * csh.simulated_seconds

    def test_comparable_at_low_skew(self):
        """Figure 4a: CSH ~ Cbase for zipf 0-0.4."""
        ji = ZipfWorkload(60000, 60000, theta=0.2, seed=4).generate()
        csh = CSHJoin().run(ji)
        cbase = CbaseJoin().run(ji)
        ratio = csh.simulated_seconds / cbase.simulated_seconds
        assert 0.5 < ratio < 1.5

    def test_skewed_s_tuples_not_copied(self):
        """Hybrid partitioning: skewed S tuples are read once, never moved."""
        ji = constant_key_input(1000, 1000, seed=2)
        res = CSHJoin(CSHConfig(sample_rate=0.1)).run(ji)
        part = res.phase("partition")
        # S-side moves happen only for normal tuples; with every tuple
        # skewed, tuple moves come from the R side only.
        assert part.counters.tuple_moves <= len(ji.r) + 1
        assert_result_correct(res, ji)

    def test_detection_false_positive_is_harmless(self):
        """A key marked skewed but absent from S produces no output and
        no wrong results."""
        ji = input_from_frequencies([50, 1], [0, 1], seed=3)
        cfg = CSHConfig(sample_rate=0.9, freq_threshold=2)
        res = CSHJoin(cfg).run(ji)
        assert_result_correct(res, ji)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            CSHConfig(sample_rate=1.5)
        with pytest.raises(ConfigError):
            CSHConfig(freq_threshold=0)
        with pytest.raises(ConfigError):
            CSHConfig(n_threads=-1)


@given(st.integers(0, 2**32 - 1), st.floats(0.0, 1.0))
@settings(max_examples=20, deadline=None)
def test_csh_always_agrees_with_cbase(seed, theta):
    ji = ZipfWorkload(3000, 3000, theta=theta, seed=seed).generate()
    assert CSHJoin(CSHConfig(n_threads=4)).run(ji).matches(
        CbaseJoin().run(ji))
