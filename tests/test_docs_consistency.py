"""Documentation consistency: the docs must reference real artifacts."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def referenced_paths(text):
    """Path-like references in backticks (modules, files, directories)."""
    for match in re.findall(r"`([A-Za-z0-9_./-]+\.(?:py|md|txt))`", text):
        yield match


@pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md",
                                 "docs/cost_model.md", "docs/architecture.md",
                                 "docs/api.md", "docs/observability.md",
                                 "docs/robustness.md", "docs/performance.md"])
def test_doc_exists_and_nonempty(doc):
    path = ROOT / doc
    assert path.exists(), doc
    assert len(path.read_text()) > 500


@pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
def test_referenced_files_exist(doc):
    text = (ROOT / doc).read_text()
    missing = []
    for ref in referenced_paths(text):
        if "*" in ref:
            continue
        candidates = [ROOT / ref, ROOT / "src" / ref,
                      ROOT / "benchmarks" / ref, ROOT / "examples" / ref,
                      ROOT / "docs" / ref]
        if any(c.exists() for c in candidates):
            continue
        # Bare module names are contextualized by their package column in
        # DESIGN.md; accept them if they exist anywhere in the tree.
        name = ref.split("/")[-1]
        if (list((ROOT / "src").rglob(name))
                or list((ROOT / "benchmarks").glob(name))):
            continue
        missing.append(ref)
    assert not missing, f"{doc} references missing files: {missing}"


def test_design_bench_targets_exist():
    """Every bench target named in DESIGN.md's experiment index exists."""
    text = (ROOT / "DESIGN.md").read_text()
    targets = set(re.findall(r"benchmarks/(bench_\w+\.py)", text))
    assert targets, "DESIGN.md names no bench targets?"
    for target in targets:
        assert (ROOT / "benchmarks" / target).exists(), target


def test_readme_examples_exist():
    text = (ROOT / "README.md").read_text()
    examples = set(re.findall(r"examples/(\w+\.py)", text))
    assert len(examples) >= 5
    for example in examples:
        assert (ROOT / "examples" / example).exists(), example


def test_registered_algorithms_documented():
    """Every algorithm in the registry appears in the README."""
    from repro import ALGORITHMS
    readme = (ROOT / "README.md").read_text()
    for name in ALGORITHMS:
        assert name.replace("cbase-npj", "npj").split("-")[0] in readme.lower()


def test_readme_documents_backends_and_gate():
    """The README covers backend selection and the bench regression gate."""
    from repro.exec.backend import BACKEND_ENV, BACKENDS
    readme = (ROOT / "README.md").read_text()
    assert BACKEND_ENV in readme
    for backend in BACKENDS:
        assert f"`{backend}`" in readme
    assert "BENCH_seed.json" in readme
    assert "bench --compare" in readme


def test_performance_doc_matches_the_gate():
    """docs/performance.md states the gate's actual threshold and floor."""
    from repro.bench.regression import (
        DEFAULT_REGRESSION_THRESHOLD,
        WALL_FLOOR_SECONDS,
    )
    text = (ROOT / "docs" / "performance.md").read_text()
    assert f"{DEFAULT_REGRESSION_THRESHOLD:.0%}" in text
    assert f"{WALL_FLOOR_SECONDS * 1000:.0f} ms" in text
    for target in ("bench-record", "bench-compare", "diff-backends"):
        assert target in text
        assert target in (ROOT / "Makefile").read_text()


def test_committed_baseline_referenced_by_ci_exists():
    """Both workflows and the README point at a baseline that is present."""
    ci = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "BENCH_seed.json" in ci
    assert (ROOT / "BENCH_seed.json").exists()
    assert (ROOT / "constraints.txt").exists()
    assert "constraints.txt" in ci


def test_experiments_covers_every_table_and_figure():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for artifact in ("Figure 1", "Figure 4", "Table I", "Scale-up",
                     "Detection", "560"):
        assert artifact in text, artifact
