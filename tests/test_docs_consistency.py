"""Documentation consistency: the docs must reference real artifacts."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def referenced_paths(text):
    """Path-like references in backticks (modules, files, directories)."""
    for match in re.findall(r"`([A-Za-z0-9_./-]+\.(?:py|md|txt))`", text):
        yield match


@pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md",
                                 "docs/cost_model.md", "docs/architecture.md",
                                 "docs/api.md", "docs/observability.md",
                                 "docs/robustness.md", "docs/performance.md",
                                 "docs/serving.md"])
def test_doc_exists_and_nonempty(doc):
    path = ROOT / doc
    assert path.exists(), doc
    assert len(path.read_text()) > 500


@pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
def test_referenced_files_exist(doc):
    text = (ROOT / doc).read_text()
    missing = []
    for ref in referenced_paths(text):
        if "*" in ref:
            continue
        candidates = [ROOT / ref, ROOT / "src" / ref,
                      ROOT / "benchmarks" / ref, ROOT / "examples" / ref,
                      ROOT / "docs" / ref]
        if any(c.exists() for c in candidates):
            continue
        # Bare module names are contextualized by their package column in
        # DESIGN.md; accept them if they exist anywhere in the tree.
        name = ref.split("/")[-1]
        if (list((ROOT / "src").rglob(name))
                or list((ROOT / "benchmarks").glob(name))):
            continue
        missing.append(ref)
    assert not missing, f"{doc} references missing files: {missing}"


def test_design_bench_targets_exist():
    """Every bench target named in DESIGN.md's experiment index exists."""
    text = (ROOT / "DESIGN.md").read_text()
    targets = set(re.findall(r"benchmarks/(bench_\w+\.py)", text))
    assert targets, "DESIGN.md names no bench targets?"
    for target in targets:
        assert (ROOT / "benchmarks" / target).exists(), target


def test_readme_examples_exist():
    text = (ROOT / "README.md").read_text()
    examples = set(re.findall(r"examples/(\w+\.py)", text))
    assert len(examples) >= 5
    for example in examples:
        assert (ROOT / "examples" / example).exists(), example


def test_registered_algorithms_documented():
    """Every algorithm in the registry appears in the README."""
    from repro import ALGORITHMS
    readme = (ROOT / "README.md").read_text()
    for name in ALGORITHMS:
        assert name.replace("cbase-npj", "npj").split("-")[0] in readme.lower()


def test_readme_documents_backends_and_gate():
    """The README covers backend selection and the bench regression gate."""
    from repro.exec.backend import BACKEND_ENV, BACKENDS
    readme = (ROOT / "README.md").read_text()
    assert BACKEND_ENV in readme
    for backend in BACKENDS:
        assert f"`{backend}`" in readme
    assert "BENCH_seed.json" in readme
    assert "bench --compare" in readme


def test_performance_doc_matches_the_gate():
    """docs/performance.md states the gate's actual threshold and floor."""
    from repro.bench.regression import (
        DEFAULT_REGRESSION_THRESHOLD,
        WALL_FLOOR_SECONDS,
    )
    text = (ROOT / "docs" / "performance.md").read_text()
    assert f"{DEFAULT_REGRESSION_THRESHOLD:.0%}" in text
    assert f"{WALL_FLOOR_SECONDS * 1000:.0f} ms" in text
    for target in ("bench-record", "bench-compare", "diff-backends"):
        assert target in text
        assert target in (ROOT / "Makefile").read_text()


def test_committed_baseline_referenced_by_ci_exists():
    """CI points at a baseline that is present, and the pip cache key
    (constraints.txt, via the shared composite action) exists."""
    ci = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "BENCH_seed.json" in ci
    assert (ROOT / "BENCH_seed.json").exists()
    assert (ROOT / "constraints.txt").exists()
    action = (ROOT / ".github" / "actions" / "setup-repro" / "action.yml")
    assert action.exists(), "the setup-repro composite action is missing"
    assert "constraints.txt" in action.read_text()


def test_workflows_share_the_setup_composite_action():
    """Every job in both workflows sets up its toolchain through the
    setup-repro composite action — no per-job setup-python/pip
    boilerplate left behind."""
    for name in ("ci.yml", "nightly.yml"):
        text = (ROOT / ".github" / "workflows" / name).read_text()
        jobs = text.count("runs-on:")
        uses = text.count("uses: ./.github/actions/setup-repro")
        assert uses == jobs, (
            f"{name}: {jobs} jobs but {uses} setup-repro uses")
        assert "actions/setup-python" not in text, (
            f"{name}: python setup belongs in the composite action")
        assert "pip install" not in text, (
            f"{name}: dependency installs belong in the composite action")


def test_experiments_covers_every_table_and_figure():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for artifact in ("Figure 1", "Figure 4", "Table I", "Scale-up",
                     "Detection", "560"):
        assert artifact in text, artifact


def test_serving_doc_covers_the_whole_protocol_surface():
    """docs/serving.md documents every op, response type, and generator."""
    from repro.serve.protocol import (
        PROTOCOL_VERSION,
        REQUEST_OPS,
        RESPONSE_TYPES,
        SPEC_GENERATORS,
    )
    text = (ROOT / "docs" / "serving.md").read_text()
    for op in REQUEST_OPS:
        assert f"`{op}`" in text, f"request op {op} undocumented"
    for rtype in RESPONSE_TYPES:
        assert f"`{rtype}`" in text, f"response type {rtype} undocumented"
    for generator in SPEC_GENERATORS:
        assert f"`{generator}`" in text, f"generator {generator} undocumented"
    assert f"protocol version {PROTOCOL_VERSION}" in text.lower()
    for section in ("cache", "admission", "fault", "single-flight"):
        assert section in text.lower(), f"serving.md lacks {section} coverage"


def test_serve_cli_flags_are_documented():
    """Every `repro serve` flag appears in docs/serving.md and the CLI
    docstring mentions the serve and diff --served entry points."""
    from repro import cli
    parser = cli.build_parser()
    serve_parser = next(
        action.choices["serve"]
        for action in parser._subparsers._group_actions)
    flags = [opt for a in serve_parser._actions for opt in a.option_strings
             if opt.startswith("--") and opt != "--help"]
    assert "--smoke" in flags and "--trace-out" in flags
    serving = (ROOT / "docs" / "serving.md").read_text()
    for flag in flags:
        assert f"`{flag}`" in serving, f"serve flag {flag} undocumented"
    assert "--served" in serving
    assert "repro serve" in (cli.__doc__ or "")
    assert "--served" in (cli.__doc__ or "")


def test_serving_doc_covers_failure_semantics():
    """The resilience surface — deadlines, circuits, drain, healing —
    is documented with its typed error kinds and health metrics."""
    text = (ROOT / "docs" / "serving.md").read_text()
    for kind in ("DeadlineExceeded", "CircuitOpen", "RequestCancelled"):
        assert kind in text, f"serving.md lacks error kind {kind}"
    for term in ("deadline_ms", "serve.health.", "half-open",
                 "drain", "self-healing", "`health`"):
        assert term in text, f"serving.md lacks {term}"
    robustness = (ROOT / "docs" / "robustness.md").read_text()
    assert "`slow`" in robustness
    assert "chaos --serve" in robustness


def test_readme_and_observability_cover_serving():
    readme = (ROOT / "README.md").read_text()
    assert "repro serve" in readme
    assert "docs/serving.md" in readme
    assert "serve.cache_hit" in (ROOT / "docs" / "observability.md").read_text()


def test_ci_hardening_is_in_place_in_both_workflows():
    """Concurrency groups, cancel-in-progress, and per-job timeouts."""
    for name in ("ci.yml", "nightly.yml"):
        text = (ROOT / ".github" / "workflows" / name).read_text()
        assert "concurrency:" in text, name
        assert "cancel-in-progress: true" in text, name
        jobs = text.count("runs-on:")
        assert jobs > 0 and text.count("timeout-minutes:") == jobs, (
            f"{name}: every job needs a timeout-minutes")


def test_ci_runs_serve_smoke_and_enforces_coverage():
    ci = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "serve-smoke:" in ci
    assert "repro serve --smoke" in ci
    assert "diff --served" in ci
    assert "serve-trace" in ci
    assert "--cov=repro" in ci
    assert "--cov-fail-under=" in ci
    constraints = (ROOT / "constraints.txt").read_text()
    assert "pytest-cov==" in constraints
    assert "coverage==" in constraints


def test_planning_doc_exists_and_covers_the_surface():
    """docs/planning.md documents candidate enumeration, correction
    learning, constraint handling, and every `repro plan` flag."""
    from repro import cli
    from repro.plan import DEFAULT_REGRET_THRESHOLD
    from repro.plan.corrections import (
        CORRECTIONS_ENV,
        DEFAULT_CORRECTIONS_FILENAME,
    )

    path = ROOT / "docs" / "planning.md"
    assert path.exists(), "docs/planning.md is missing"
    text = path.read_text()
    assert len(text) > 500
    for term in ("candidate", "correction", "constraint", "sketch",
                 "regret", "oracle", "bit-identical", "argmin",
                 "memory budget", "deadline"):
        assert term in text.lower(), f"planning.md lacks {term}"
    assert CORRECTIONS_ENV in text
    assert DEFAULT_CORRECTIONS_FILENAME in text
    assert f"{DEFAULT_REGRET_THRESHOLD:g}x" in text

    parser = cli.build_parser()
    plan_parser = next(
        action.choices["plan"]
        for action in parser._subparsers._group_actions)
    flags = [opt for a in plan_parser._actions for opt in a.option_strings
             if opt.startswith("--") and opt != "--help"]
    assert "--gate" in flags and "--execute" in flags
    for flag in flags:
        assert f"`{flag}`" in text, f"plan flag {flag} undocumented"
    # The --auto entry points ride along in the same doc.
    assert "run --auto" in text
    assert "bench" in text and "--auto" in text
    assert "--planner" in text


def test_readme_and_observability_cover_the_planner():
    readme = (ROOT / "README.md").read_text()
    assert "repro plan" in readme
    assert "--auto" in readme
    assert "docs/planning.md" in readme
    obs = (ROOT / "docs" / "observability.md").read_text()
    for metric in ("plan.requests", "plan.predicted_wall_seconds",
                   "plan.realized_wall_seconds"):
        assert metric in obs, f"observability.md lacks {metric}"


def test_ci_runs_the_plan_gate_with_artifacts():
    """CI gates planner regret on every PR; nightly re-runs at 4x."""
    ci = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "plan-gate:" in ci
    assert "make plan-gate" in ci
    assert "make run-auto" in ci
    assert "plan-candidates.json" in ci
    assert "regret-report.json" in ci
    nightly = (ROOT / ".github" / "workflows" / "nightly.yml").read_text()
    assert "plan --gate" in nightly
    assert "--tuples 80000" in nightly
    makefile = (ROOT / "Makefile").read_text()
    assert "plan-gate:" in makefile
    assert "run-auto:" in makefile
    assert "plan --gate" in makefile
    assert "run --auto" in makefile


def test_ci_coverage_floor_and_durations_are_ratcheted():
    """The coverage ratchet sits at 78 and slow tests are surfaced."""
    ci = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "--cov-fail-under=78" in ci
    assert "--durations=20" in ci


def test_robustness_doc_covers_disk_faults_and_spill_recovery():
    """The disk-fault ladder and checkpoint/resume are documented."""
    from repro.faults.plan import (
        DISK_FAULT_KINDS,
        STORE_READ_POINT,
        STORE_WRITE_POINT,
    )
    text = (ROOT / "docs" / "robustness.md").read_text()
    assert "Disk faults & spill recovery" in text
    for kind in DISK_FAULT_KINDS:
        assert f"`{kind}`" in text, f"disk fault kind {kind} undocumented"
    for point in (STORE_WRITE_POINT, STORE_READ_POINT):
        assert f"`{point}`" in text, f"store point {point} undocumented"
    for term in ("chaos --spill", "--resume", "SpillError", "run.json",
                 "degrade"):
        assert term in text, f"robustness.md lacks {term}"


def test_performance_doc_covers_the_spill_budget():
    """docs/performance.md documents every spill knob with its default."""
    from repro.store.chunks import CODEC_ENV
    from repro.store.spill import (
        DEFAULT_CHUNK_BYTES,
        MEMORY_BUDGET_ENV,
        SPILL_CHUNK_BYTES_ENV,
        SPILL_DIR_ENV,
        SPILL_STRICT_ENV,
    )
    text = (ROOT / "docs" / "performance.md").read_text()
    for env in (MEMORY_BUDGET_ENV, SPILL_DIR_ENV, SPILL_CHUNK_BYTES_ENV,
                SPILL_STRICT_ENV, CODEC_ENV):
        assert env in text, f"performance.md lacks {env}"
    assert str(DEFAULT_CHUNK_BYTES) in text
    assert "diff --spill" in text
    assert "bit-identical" in text
    assert "store.chunks_written" in (
        ROOT / "docs" / "observability.md").read_text()


def test_spill_bench_tier_is_committed_and_wired():
    """The spilled scale tier has a committed baseline and make targets."""
    text = (ROOT / "docs" / "performance.md").read_text()
    assert "BENCH_spill_seed.json" in text
    assert (ROOT / "BENCH_spill_seed.json").exists()
    makefile = (ROOT / "Makefile").read_text()
    for target in ("bench-spill", "spill-chaos"):
        assert target in text, f"performance.md lacks {target}"
        assert f"{target}:" in makefile, f"Makefile lacks {target}"


def test_ci_runs_spill_chaos_with_manifest_artifact():
    """The spill-chaos job kill-and-resumes on vector AND parallel and
    uploads the spill manifests."""
    ci = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "spill-chaos:" in ci
    assert "chaos --spill" in ci
    assert "--artifact-dir" in ci
    assert "spill-manifests" in ci
    spill_job = ci.split("spill-chaos:")[1]
    assert spill_job.count("chaos --spill") >= 2, (
        "spill-chaos must sweep both the vector and parallel backends")
    assert "REPRO_BACKEND=parallel" in spill_job
    assert "zstandard==" in (ROOT / "constraints.txt").read_text()


def test_performance_doc_covers_out_of_core_ingest():
    """docs/performance.md documents every streaming-ingest knob with
    its default, and observability.md carries the paging metrics."""
    from repro.store.chunks import CODEC_ENV
    from repro.store.relations import (
        DEFAULT_PAGE_CACHE_SEGMENTS,
        DEFAULT_STREAM_CHUNK_TUPLES,
        PAGE_CACHE_ENV,
        STREAM_CHUNK_ENV,
    )
    text = (ROOT / "docs" / "performance.md").read_text()
    for env in (STREAM_CHUNK_ENV, PAGE_CACHE_ENV, CODEC_ENV):
        assert env in text, f"performance.md lacks {env}"
    assert str(DEFAULT_STREAM_CHUNK_TUPLES) in text
    assert str(DEFAULT_PAGE_CACHE_SEGMENTS) in text
    assert "diff --oocore" in text
    assert "bench --oocore" in text
    assert "clear_refs" in text, (
        "the honest-measurement methodology (VmHWM reset) must be "
        "documented next to the claim it protects")
    obs = (ROOT / "docs" / "observability.md").read_text()
    for metric in ("store.bytes_raw", "store.compression_ratio",
                   "store.dictionaries_trained", "store.pages_in",
                   "store.bytes_paged_in", "store.mappings_released",
                   "store.column_materializations",
                   "store.zero_copy_shares"):
        assert metric in obs, f"observability.md lacks {metric}"


def test_oocore_bench_tier_is_committed_and_wired():
    """The out-of-core scale tier has a committed, claim-clean baseline
    plus make targets, a README row, and both CI legs."""
    from repro.bench.oocore import load_oocore_bench
    path = ROOT / "BENCH_oocore_seed.json"
    assert path.exists()
    record = load_oocore_bench(path)
    assert record.verify() == [], (
        "the committed oocore baseline must satisfy its own claims")
    assert record.dataset_bytes > record.budget_bytes
    text = (ROOT / "docs" / "performance.md").read_text()
    assert "BENCH_oocore_seed.json" in text
    assert "BENCH_oocore_seed.json" in (ROOT / "README.md").read_text()
    makefile = (ROOT / "Makefile").read_text()
    for target in ("bench-oocore", "diff-oocore"):
        assert target in text, f"performance.md lacks {target}"
        assert f"{target}:" in makefile, f"Makefile lacks {target}"


def test_ci_runs_the_oocore_smoke_and_nightly_legs():
    """Per-PR oocore smoke (differential + verified tier record + the
    zstd codec tests) and a nightly full-scale leg beside the spill
    tier."""
    ci = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "oocore-smoke:" in ci
    assert "diff --oocore" in ci
    assert "bench --oocore --record" in ci
    smoke_job = ci.split("oocore-smoke:")[1].split("spill-chaos:")[0]
    assert "zstandard" in smoke_job, (
        "the smoke job must install zstandard so the gated codec tests "
        "run for real instead of skipping")
    assert "-k zstd" in smoke_job
    nightly = (ROOT / ".github" / "workflows" / "nightly.yml").read_text()
    assert "diff --oocore" in nightly
    assert "BENCH_oocore_seed.json" in nightly


def test_ci_runs_serve_chaos_with_health_artifact():
    """The serve-chaos job storms both backends and uploads health."""
    ci = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "serve-chaos:" in ci
    assert "chaos --serve" in ci
    assert "--health-out" in ci
    assert "REPRO_BACKEND=parallel" in ci
    assert "serve-health" in ci
    makefile = (ROOT / "Makefile").read_text()
    assert "serve-chaos:" in makefile
    assert "chaos --serve" in makefile
