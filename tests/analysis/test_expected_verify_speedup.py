"""Tests for expected-output math, verification, and speedup helpers."""

import numpy as np
import pytest

from repro.analysis.expected import (
    expected_output,
    expected_top_key_frequency,
    expected_zipf_output_count,
    output_share_of_top_keys,
)
from repro.analysis.speedup import (
    SweepPoint,
    max_speedup,
    parity_band,
    speedup,
    speedup_series,
)
from repro.analysis.verify import verify_agreement, verify_all, verify_result
from repro.cpu import CbaseJoin
from repro.data.generators import uniform_input
from repro.data.zipf import ZipfWorkload
from repro.errors import ConfigError, VerificationError
from repro.exec.result import JoinResult


class TestExpected:
    def test_expected_output_matches_run(self):
        ji = uniform_input(3000, 3000, n_keys=500, seed=1)
        count, checksum = expected_output(ji)
        res = CbaseJoin().run(ji)
        assert res.output_count == count
        assert res.output_checksum == checksum

    @pytest.mark.slow
    def test_top_key_frequency_reproduces_paper_observation(self):
        """Paper: at 32M tuples / zipf 1.0 the most popular key is shared
        by ~1.79M tuples per table."""
        freq = expected_top_key_frequency(32_000_000, 32_000_000, 1.0)
        assert 1.6e6 < freq < 2.0e6

    def test_zipf_output_count_close_to_sampled(self):
        n, k, theta = 50000, 50000, 0.9
        ji = ZipfWorkload(n, n, theta=theta, seed=3).generate()
        count, _ = expected_output(ji)
        estimate = expected_zipf_output_count(n, n, k, theta)
        assert count == pytest.approx(estimate, rel=0.35)

    def test_output_share_reproduces_996_claim(self):
        """Paper: at zipf 1.0, the ~870 hottest keys produce ~99.6% of the
        output."""
        share = output_share_of_top_keys(32_000_000, 1.0, 870)
        assert 0.99 < share < 1.0

    def test_output_share_monotone(self):
        s1 = output_share_of_top_keys(10000, 1.0, 10)
        s2 = output_share_of_top_keys(10000, 1.0, 100)
        assert s2 > s1


class TestVerify:
    def test_verify_result_passes_and_fails(self):
        ji = uniform_input(1000, 1000, seed=2)
        res = CbaseJoin().run(ji)
        verify_result(res, ji)  # should not raise
        bad = JoinResult(algorithm="bad", n_r=1000, n_s=1000,
                         output_count=res.output_count + 1,
                         output_checksum=res.output_checksum)
        with pytest.raises(VerificationError):
            verify_result(bad, ji)

    def test_verify_checksum_mismatch(self):
        ji = uniform_input(1000, 1000, seed=2)
        res = CbaseJoin().run(ji)
        bad = JoinResult(algorithm="bad", n_r=1000, n_s=1000,
                         output_count=res.output_count,
                         output_checksum=res.output_checksum ^ 1)
        with pytest.raises(VerificationError):
            verify_result(bad, ji)

    def test_verify_agreement(self):
        a = JoinResult("a", 1, 1, 5, 9)
        b = JoinResult("b", 1, 1, 5, 9)
        verify_agreement([a, b])
        c = JoinResult("c", 1, 1, 6, 9)
        with pytest.raises(VerificationError):
            verify_agreement([a, c])

    def test_verify_all(self):
        ji = uniform_input(500, 500, seed=4)
        results = [CbaseJoin().run(ji)]
        assert verify_all(results, ji) == results


class TestSpeedup:
    def points(self):
        return [
            SweepPoint(0.0, {"base": 1.0, "new": 1.0}),
            SweepPoint(0.5, {"base": 2.0, "new": 1.0}),
            SweepPoint(1.0, {"base": 8.0, "new": 1.0}),
        ]

    def test_speedup(self):
        assert speedup(8.0, 2.0) == 4.0
        with pytest.raises(ConfigError):
            speedup(1.0, 0.0)

    def test_series(self):
        series = speedup_series(self.points(), "base", "new")
        assert series == [(0.0, 1.0), (0.5, 2.0), (1.0, 8.0)]

    def test_max_speedup_with_range(self):
        param, s = max_speedup(self.points(), "base", "new",
                               parameter_range=(0.5, 1.0))
        assert (param, s) == (1.0, 8.0)
        param, s = max_speedup(self.points(), "base", "new",
                               parameter_range=(0.0, 0.5))
        assert (param, s) == (0.5, 2.0)
        with pytest.raises(ConfigError):
            max_speedup(self.points(), "base", "new",
                        parameter_range=(2.0, 3.0))

    def test_parity_band(self):
        assert parity_band(self.points(), "base", "new", (0.0, 0.0))
        assert not parity_band(self.points(), "base", "new", (0.0, 1.0))
