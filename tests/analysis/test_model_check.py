"""Tests for the model-vs-paper shape checker."""

import pytest

from repro.analysis.model_check import (
    CellCheck,
    ShapeCheck,
    check_against_table1,
)
from repro.bench.paper import TABLE1, TABLE1_THETAS
from repro.errors import ConfigError


def perfect_model_rows():
    """Model rows that equal the paper exactly."""
    return {row: dict(values) for row, values in TABLE1.items()}


def test_perfect_match_has_unit_ratios():
    check = check_against_table1(perfect_model_rows())
    assert check.worst_ratio() == pytest.approx(1.0)
    assert check.median_ratio() == pytest.approx(1.0)
    assert check.cells_within(1.0001) == 1.0


def test_cell_count_covers_full_table():
    check = check_against_table1(perfect_model_rows())
    assert len(check.cells) == len(TABLE1) * len(TABLE1_THETAS)


def test_scaled_model_detected():
    rows = perfect_model_rows()
    for theta in rows["cbase join"]:
        rows["cbase join"][theta] *= 3.0
    check = check_against_table1(rows)
    assert check.worst_ratio() == pytest.approx(3.0)
    assert check.cells_within(2.0) < 1.0
    assert check.cells_within(3.0001) == 1.0


def test_missing_row_rejected():
    rows = perfect_model_rows()
    del rows["gsh all other"]
    with pytest.raises(ConfigError):
        check_against_table1(rows)


def test_cells_within_validation():
    check = check_against_table1(perfect_model_rows())
    with pytest.raises(ConfigError):
        check.cells_within(0.5)


def test_report_renders():
    check = check_against_table1(perfect_model_rows())
    text = check.report()
    assert "median ratio" in text
    assert "cbase join" in text


def test_cell_ratio_symmetry():
    cell = CellCheck("row", 1.0, paper_seconds=2.0, model_seconds=1.0)
    assert cell.ratio == 0.5
    check = ShapeCheck(cells=[cell])
    assert check.worst_ratio() == 2.0
