"""Analytic-vs-executed equivalence: the license for paper-scale claims."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.analytic import (
    ANALYTIC_EXECUTORS,
    AnalyticWorkload,
    analytic_cbase,
    analytic_csh,
    analytic_gbase,
    analytic_gsh,
    analytic_npj,
    analytic_run,
    simulate_csh_detection,
)
from repro.core.csh import CSHConfig, CSHJoin, detect_skewed_keys
from repro.core.gsh import GSHJoin
from repro.cpu import CbaseJoin, NoPartitionJoin
from repro.data.generators import constant_key_input, uniform_input
from repro.data.zipf import ZipfWorkload
from repro.errors import WorkloadError


def make_pair(theta, n=30000, seed=3):
    ji = ZipfWorkload(n, n, theta=theta, seed=seed).generate()
    return ji, AnalyticWorkload.from_join_input(ji)


class TestWorkload:
    def test_from_join_input_counts(self):
        ji = uniform_input(5000, 6000, n_keys=700, seed=1)
        wl = AnalyticWorkload.from_join_input(ji)
        assert wl.n_r == 5000
        assert wl.n_s == 6000
        from tests.conftest import expected_summary
        assert wl.output_count() == expected_summary(ji)[0]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            AnalyticWorkload(np.array([1, 1]), np.array([1, 1]),
                             np.array([1, 1]))
        with pytest.raises(WorkloadError):
            AnalyticWorkload(np.array([1]), np.array([1, 2]), np.array([1]))

    def test_zero_count_keys_dropped(self):
        wl = AnalyticWorkload(np.array([1, 2, 3]), np.array([1, 0, 0]),
                              np.array([0, 0, 2]))
        assert wl.keys.tolist() == [1, 3]

    def test_from_zipf_small_exact(self):
        wl = AnalyticWorkload.from_zipf(10000, 10000, 0.9, seed=5)
        assert wl.n_r == 10000
        assert wl.n_s == 10000

    def test_from_zipf_capped_domain(self):
        wl = AnalyticWorkload.from_zipf(200000, 200000, 0.7,
                                        n_keys=200000, seed=5,
                                        max_distinct=1 << 12)
        # The capped path approximates totals (Poisson head/expected tail).
        assert abs(wl.n_r - 200000) < 5000
        assert np.unique(wl.keys).size == wl.keys.size


class TestCbaseEquivalence:
    @pytest.mark.parametrize("theta", [0.0, 0.5, 1.0])
    def test_counters_and_seconds_exact(self, theta):
        ji, wl = make_pair(theta)
        ex = CbaseJoin().run(ji)
        an = analytic_cbase(wl)
        assert an.output_count == ex.output_count
        for name in ("partition", "join"):
            assert (an.phase(name).counters.as_dict()
                    == ex.phase(name).counters.as_dict())
            assert an.phase(name).simulated_seconds == pytest.approx(
                ex.phase(name).simulated_seconds, rel=1e-12)

    def test_split_path_exact(self):
        ji = constant_key_input(40000, 40000, seed=1)
        wl = AnalyticWorkload.from_join_input(ji)
        ex = CbaseJoin().run(ji)
        an = analytic_cbase(wl)
        assert ex.phase("partition").details.get("split_partitions", 0) >= 1
        assert (an.phase("partition").details.get("split_partitions", 0)
                == ex.phase("partition").details.get("split_partitions"))
        assert an.simulated_seconds == pytest.approx(ex.simulated_seconds,
                                                     rel=1e-12)


class TestNpjEquivalence:
    @pytest.mark.parametrize("theta", [0.0, 0.8])
    def test_totals_exact_seconds_close(self, theta):
        ji, wl = make_pair(theta)
        ex = NoPartitionJoin().run(ji)
        an = analytic_npj(wl)
        assert an.output_count == ex.output_count
        assert an.counters.as_dict() == ex.counters.as_dict()
        assert an.simulated_seconds == pytest.approx(ex.simulated_seconds,
                                                     rel=0.15)


class TestCshEquivalence:
    @pytest.mark.parametrize("theta", [0.0, 0.7, 1.0])
    def test_with_injected_keys(self, theta):
        ji, wl = make_pair(theta)
        det = detect_skewed_keys(ji.r.keys, 0.01, 2, seed=0)
        ex = CSHJoin(CSHConfig()).run(ji)
        an = analytic_csh(wl, CSHConfig(), skewed_keys=det.skewed_keys)
        assert an.output_count == ex.output_count
        # NM-join is exact; partition totals are exact, seconds approximate.
        assert (an.phase("nm-join").counters.as_dict()
                == ex.phase("nm-join").counters.as_dict())
        assert an.phase("nm-join").simulated_seconds == pytest.approx(
            ex.phase("nm-join").simulated_seconds, rel=1e-12)
        assert an.phase("partition").simulated_seconds == pytest.approx(
            ex.phase("partition").simulated_seconds, rel=0.15)
        assert an.meta["skewed_output"] == ex.meta["skewed_output"]

    def test_simulated_detection_is_plausible(self):
        wl = AnalyticWorkload.from_zipf(50000, 50000, 1.0, seed=2)
        keys = simulate_csh_detection(wl, CSHConfig())
        assert keys.size > 0
        # the hottest key must be detected
        hottest = wl.keys[np.argmax(wl.cr)]
        assert hottest in keys.tolist()


class TestGpuEquivalence:
    @pytest.mark.parametrize("theta", [0.0, 1.0])
    def test_gbase_close(self, theta):
        ji, wl = make_pair(theta)
        ex = GbaseRun(ji)
        an = analytic_gbase(wl)
        assert an.output_count == ex.output_count
        assert an.phase("partition").simulated_seconds == pytest.approx(
            ex.phase("partition").simulated_seconds, rel=1e-9)
        assert an.phase("join").simulated_seconds == pytest.approx(
            ex.phase("join").simulated_seconds, rel=0.4)

    @pytest.mark.parametrize("theta", [0.0, 1.0])
    def test_gsh_close(self, theta):
        ji, wl = make_pair(theta)
        ex = GSHJoin().run(ji)
        an = analytic_gsh(wl)
        assert an.output_count == ex.output_count
        assert an.phase("partition").simulated_seconds == pytest.approx(
            ex.phase("partition").simulated_seconds, rel=0.05)
        assert an.phase("skew-join").simulated_seconds == pytest.approx(
            ex.phase("skew-join").simulated_seconds, rel=0.2)
        assert an.simulated_seconds == pytest.approx(ex.simulated_seconds,
                                                     rel=0.4)


def GbaseRun(ji):
    from repro.gpu import GbaseJoin
    return GbaseJoin().run(ji)


class TestRegistry:
    def test_all_five_registered(self):
        assert set(ANALYTIC_EXECUTORS) == {
            "cbase", "cbase-npj", "csh", "gbase", "gsh"}

    def test_analytic_run_dispatch(self):
        wl = AnalyticWorkload.from_zipf(2000, 2000, 0.5, seed=1)
        res = analytic_run("cbase", wl)
        assert res.algorithm == "cbase"
        assert res.meta["analytic"] is True

    def test_unknown_name(self):
        wl = AnalyticWorkload.from_zipf(100, 100, 0.5, seed=1)
        with pytest.raises(WorkloadError):
            analytic_run("bogus", wl)


@given(st.integers(0, 2**31), st.floats(0.0, 1.0))
@settings(max_examples=10, deadline=None)
def test_cbase_equivalence_property(seed, theta):
    ji = ZipfWorkload(4000, 4000, theta=theta, seed=seed).generate()
    wl = AnalyticWorkload.from_join_input(ji)
    ex = CbaseJoin().run(ji)
    an = analytic_cbase(wl)
    assert an.counters.as_dict() == ex.counters.as_dict()
    assert an.simulated_seconds == pytest.approx(ex.simulated_seconds,
                                                 rel=1e-12)
