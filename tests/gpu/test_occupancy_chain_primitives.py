"""Tests for occupancy, bucket chains, and device primitives."""

import numpy as np
import pytest

from repro.cpu.hashing import hash_keys
from repro.cpu.partition import partition_pass
from repro.errors import ConfigError
from repro.gpu.bucket_chain import (
    BucketChain,
    BucketChainedPartitions,
    sublist_ranges,
)
from repro.gpu.device import A100
from repro.gpu.occupancy import (
    MAX_BLOCKS_PER_SM,
    device_concurrency,
    occupancy_for,
)
from repro.gpu.primitives import (
    bucket_chain_append_kernel,
    histogram_kernel,
    prefix_scan_kernel,
    scatter_kernel,
)


class TestOccupancy:
    def test_shared_memory_limits_fat_blocks(self):
        occ = occupancy_for(A100, shared_mem_per_block=96 * 1024)
        assert occ.blocks_per_sm == 2  # 192KB / 96KB
        assert occ.limited_by == "shared_memory"

    def test_thread_limit_for_lean_blocks(self):
        occ = occupancy_for(A100, shared_mem_per_block=0,
                            threads_per_block=256)
        assert occ.blocks_per_sm == 2048 // 256
        assert occ.limited_by == "threads"

    def test_block_cap(self):
        occ = occupancy_for(A100, shared_mem_per_block=0,
                            threads_per_block=32)
        assert occ.blocks_per_sm == MAX_BLOCKS_PER_SM

    def test_device_concurrency(self):
        assert device_concurrency(A100, 96 * 1024) == 2 * A100.sm_count

    def test_validation(self):
        with pytest.raises(ConfigError):
            occupancy_for(A100, shared_mem_per_block=-1)
        with pytest.raises(ConfigError):
            occupancy_for(A100, shared_mem_per_block=200 * 1024)
        with pytest.raises(ConfigError):
            occupancy_for(A100, 0, threads_per_block=0)


class TestBucketChain:
    def chain(self, sizes, start=0):
        buckets = []
        pos = start
        for s in sizes:
            buckets.append((pos, pos + s))
            pos += s
        return BucketChain(partition=0, buckets=buckets)

    def test_counts(self):
        c = self.chain([512, 512, 100])
        assert c.n_buckets == 3
        assert c.n_tuples == 1124

    def test_sublists_respect_capacity(self):
        c = self.chain([512] * 10)
        subs = c.sublists(max_tuples=1024)
        assert len(subs) == 5
        assert all(sum(b - a for a, b in s) <= 1024 for s in subs)

    def test_sublists_never_split_buckets(self):
        c = self.chain([512, 512, 512])
        subs = c.sublists(max_tuples=700)  # one bucket fits, two do not
        assert [len(s) for s in subs] == [1, 1, 1]

    def test_sublist_ranges_are_contiguous(self):
        c = self.chain([512] * 4, start=1000)
        ranges = sublist_ranges(c, max_tuples=1024)
        assert ranges == [(1000, 2024), (2024, 3048)]

    def test_sublists_validation(self):
        with pytest.raises(ConfigError):
            self.chain([10]).sublists(0)

    def test_from_partitioned_covers_all_tuples(self):
        keys = np.random.default_rng(0).integers(
            0, 1000, 5000).astype(np.uint32)
        pr = partition_pass(keys, keys, hash_keys(keys), 0, 3, 2).partitioned
        chained = BucketChainedPartitions.from_partitioned(pr,
                                                           bucket_tuples=256)
        assert len(chained.chains) == pr.fanout
        total = sum(c.n_tuples for c in chained.chains)
        assert total == 5000
        for p in range(pr.fanout):
            lo, hi = int(pr.offsets[p]), int(pr.offsets[p + 1])
            chain = chained.chain(p)
            assert chain.n_tuples == hi - lo
            if chain.buckets:
                assert chain.buckets[0][0] == lo
                assert chain.buckets[-1][1] == hi

    def test_from_partitioned_validation(self):
        keys = np.arange(10, dtype=np.uint32)
        pr = partition_pass(keys, keys, hash_keys(keys), 0, 1, 1).partitioned
        with pytest.raises(ConfigError):
            BucketChainedPartitions.from_partitioned(pr, bucket_tuples=0)


class TestPrimitives:
    def test_histogram_kernel_work(self):
        work = histogram_kernel(10000)
        total = sum(w.total_counters.seq_tuple_reads for w in work)
        assert total == 10000

    def test_scatter_kernel_coalescing_flag(self):
        coalesced = scatter_kernel(1000, coalesced=True)
        scattered = scatter_kernel(1000, coalesced=False)
        assert sum(w.total_counters.random_accesses for w in coalesced) == 0
        assert sum(w.total_counters.random_accesses for w in scattered) == 1000

    def test_prefix_scan_kernel(self):
        work = prefix_scan_kernel(4096)
        assert sum(w.total_counters.sync_barriers for w in work) >= 12
        assert prefix_scan_kernel(0) == []
        with pytest.raises(ConfigError):
            prefix_scan_kernel(-1)

    def test_bucket_chain_append_counts_atomics_per_batch(self):
        work = bucket_chain_append_kernel(1000, reorder_batch=4)
        atomics = sum(w.total_counters.atomic_ops for w in work)
        assert atomics == 250
        moves = sum(w.total_counters.tuple_moves for w in work)
        assert moves == 1000
        with pytest.raises(ConfigError):
            bucket_chain_append_kernel(10, reorder_batch=0)
