"""Tests for the host-device transfer model."""

import pytest

from repro.data.zipf import ZipfWorkload
from repro.errors import ConfigError
from repro.gpu import GbaseJoin
from repro.gpu.transfer import (
    NVLINK3,
    PCIE4_X16,
    Interconnect,
    table_transfer_seconds,
    transfer_break_even_tuples,
    with_transfer,
)


def test_transfer_seconds_linear_in_bytes():
    link = Interconnect("test", bandwidth=1e9, latency=1e-6)
    assert link.transfer_seconds(0) == 0.0
    assert link.transfer_seconds(1e9) == pytest.approx(1.0 + 1e-6)
    assert link.transfer_seconds(2e9) == pytest.approx(2.0 + 1e-6)


def test_interconnect_validation():
    with pytest.raises(ConfigError):
        Interconnect("bad", bandwidth=0)
    with pytest.raises(ConfigError):
        Interconnect("bad", bandwidth=1, latency=-1)
    with pytest.raises(ConfigError):
        PCIE4_X16.transfer_seconds(-1)


def test_nvlink_faster_than_pcie():
    n = 32_000_000
    assert (table_transfer_seconds(n, NVLINK3)
            < table_transfer_seconds(n, PCIE4_X16))


def test_with_transfer_prepends_phase():
    ji = ZipfWorkload(20000, 20000, theta=0.8, seed=1).generate()
    gpu_resident = GbaseJoin().run(ji)
    shipped = with_transfer(gpu_resident)
    assert shipped.algorithm == "gbase+transfer"
    assert shipped.phases[0].name == "transfer"
    assert shipped.output_count == gpu_resident.output_count
    assert (shipped.simulated_seconds
            > gpu_resident.simulated_seconds)
    expected = PCIE4_X16.transfer_seconds(8 * (len(ji.r) + len(ji.s)))
    assert shipped.phases[0].simulated_seconds == pytest.approx(expected)


def test_with_transfer_one_side_only():
    ji = ZipfWorkload(10000, 10000, theta=0.5, seed=2).generate()
    res = GbaseJoin().run(ji)
    r_only = with_transfer(res, ship_r=True, ship_s=False)
    both = with_transfer(res)
    assert (r_only.phases[0].simulated_seconds
            < both.phases[0].simulated_seconds)


def test_break_even():
    # GPU never wins when slower per tuple.
    assert transfer_break_even_tuples(1e-9, 2e-9) == float("inf")
    # Clear GPU advantage: finite break-even, decreasing with bandwidth.
    pcie = transfer_break_even_tuples(10e-9, 1e-9, PCIE4_X16)
    nvlink = transfer_break_even_tuples(10e-9, 1e-9, NVLINK3)
    assert 0 < nvlink < pcie < float("inf")
