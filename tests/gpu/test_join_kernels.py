"""Unit tests for the Gbase join-kernel cost computation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.hashing import bucket_ids, hash_keys
from repro.cpu.partition import partition_pass
from repro.data.generators import constant_key_input, uniform_input
from repro.gpu.device import A100
from repro.gpu.gbase.join_kernels import gbase_join_phase, probe_block_counters
from repro.gpu.simulator import GPUSimulator
from repro.gpu.warp import lockstep_probe_rounds


def brute_force_probe_costs(r_keys, s_keys, block_threads, bucket_bits):
    """Reference implementation of the block's probe loop costs."""
    r_hash = hash_keys(r_keys)
    s_hash = hash_keys(s_keys)
    chains = {}
    for h in r_hash:
        b = int(h) >> (32 - bucket_bits) if bucket_bits else 0
        chains[b] = chains.get(b, 0) + 1
    per_probe = []
    for h in s_hash:
        b = int(h) >> (32 - bucket_bits) if bucket_bits else 0
        per_probe.append(chains.get(b, 0))
    useful = sum(per_probe)
    lockstep = 0
    for start in range(0, len(per_probe), block_threads):
        lockstep += max(per_probe[start:start + block_threads], default=0)
    matches = 0
    from collections import Counter
    r_count = Counter(r_keys.tolist())
    for k in s_keys.tolist():
        matches += r_count.get(k, 0)
    return useful, lockstep, matches


@given(st.lists(st.integers(0, 9), min_size=0, max_size=40),
       st.lists(st.integers(0, 9), min_size=0, max_size=40))
@settings(max_examples=60, deadline=None)
def test_probe_block_counters_vs_brute_force(r_list, s_list):
    r_keys = np.array(r_list, dtype=np.uint32)
    s_keys = np.array(s_list, dtype=np.uint32)
    bucket_bits = 4
    threads = 8
    counters = probe_block_counters(
        r_keys, hash_keys(r_keys), s_keys, hash_keys(s_keys),
        threads, bucket_bits,
    )
    useful, lockstep, matches = brute_force_probe_costs(
        r_keys, s_keys, threads, bucket_bits)
    assert counters.atomic_ops == useful
    assert counters.key_compares == useful
    assert counters.chain_steps == lockstep
    assert counters.sync_barriers == lockstep
    assert counters.output_tuples == matches
    assert counters.table_inserts == r_keys.size
    assert counters.hash_ops == r_keys.size + s_keys.size


def test_empty_sides_have_no_probe_cost():
    empty = np.empty(0, dtype=np.uint32)
    keys = np.arange(10, dtype=np.uint32)
    c1 = probe_block_counters(empty, hash_keys(empty), keys,
                              hash_keys(keys), 32, 4)
    assert c1.chain_steps == 0 and c1.output_tuples == 0
    c2 = probe_block_counters(keys, hash_keys(keys), empty,
                              hash_keys(empty), 32, 4)
    assert c2.chain_steps == 0
    assert c2.table_inserts == 10


def test_gbase_join_phase_block_count_matches_sublist_math():
    ji = constant_key_input(10000, 500, seed=1)
    bits = 2
    pr = partition_pass(ji.r.keys, ji.r.payloads, hash_keys(ji.r.keys),
                        0, bits, 1).partitioned
    ps = partition_pass(ji.s.keys, ji.s.payloads, hash_keys(ji.s.keys),
                        0, bits, 1).partitioned
    sim = GPUSimulator(device=A100)
    phase = gbase_join_phase(pr, ps, sim, sublist_capacity=1024)
    # all 10000 R tuples share one partition; bucket-aligned sub-lists of
    # <= 1024 tuples (bucket = 512) -> 10 blocks
    assert phase.n_blocks == 10
    assert phase.summary.count == 10000 * 500


def test_gbase_join_phase_uniform_one_block_per_pair():
    ji = uniform_input(4000, 4000, seed=2)
    bits = 3
    pr = partition_pass(ji.r.keys, ji.r.payloads, hash_keys(ji.r.keys),
                        0, bits, 1).partitioned
    ps = partition_pass(ji.s.keys, ji.s.payloads, hash_keys(ji.s.keys),
                        0, bits, 1).partitioned
    sim = GPUSimulator(device=A100)
    phase = gbase_join_phase(pr, ps, sim, sublist_capacity=None)
    assert phase.n_blocks == 8


def test_sublists_only_multiply_probe_side_reads():
    """Each additional sub-list re-reads the S partition once — the
    S-amplification the paper criticizes in Gbase."""
    ji = constant_key_input(8192, 1000, seed=3)
    pr = partition_pass(ji.r.keys, ji.r.payloads, hash_keys(ji.r.keys),
                        0, 0, 1).partitioned
    ps = partition_pass(ji.s.keys, ji.s.payloads, hash_keys(ji.s.keys),
                        0, 0, 1).partitioned
    sim1, sim2 = GPUSimulator(device=A100), GPUSimulator(device=A100)
    one = gbase_join_phase(pr, ps, sim1, sublist_capacity=None)
    many = gbase_join_phase(pr, ps, sim2, sublist_capacity=1024)
    # hash ops on the probe side scale with the number of sub-lists
    assert many.counters.hash_ops > one.counters.hash_ops
    n_sub = many.n_blocks
    expected_probe_hashes = n_sub * 1000 + 8192
    assert many.counters.hash_ops == expected_probe_hashes
    assert many.matches_equal(one) if hasattr(many, "matches_equal") else \
        (many.summary.count == one.summary.count
         and many.summary.checksum == one.summary.checksum)
