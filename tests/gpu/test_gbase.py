"""Tests for the Gbase GPU join and its partition/join kernels."""

import numpy as np
import pytest

from repro.cpu.hashing import hash_keys
from repro.data.generators import constant_key_input, uniform_input
from repro.data.zipf import ZipfWorkload
from repro.gpu.device import A100
from repro.gpu.gbase import GbaseConfig, GbaseJoin, gbase_join_phase
from repro.gpu.partitioning import (
    choose_gpu_bits,
    gbase_partition,
    gsh_partition,
)
from repro.gpu.simulator import GPUSimulator
from tests.conftest import assert_result_correct


def test_choose_gpu_bits_respects_capacity():
    b1, b2 = choose_gpu_bits(1 << 20, 4096)
    assert (1 << 20) >> (b1 + b2) <= 4096


def make_sim():
    return GPUSimulator(device=A100)


class TestGpuPartitioning:
    def test_gbase_partition_is_permutation(self):
        ji = uniform_input(20000, 1, n_keys=5000, seed=1)
        sim = make_sim()
        res = gbase_partition(ji.r.keys, ji.r.payloads, 4, 3, sim, "r")
        assert sorted(res.partitioned.keys.tolist()) == sorted(
            ji.r.keys.tolist())
        assert res.seconds > 0
        assert res.counters.atomic_ops > 0  # bucket slot reservations

    def test_gsh_partition_is_permutation(self):
        ji = uniform_input(20000, 1, n_keys=5000, seed=1)
        sim = make_sim()
        res = gsh_partition(ji.r.keys, ji.r.payloads, 4, 3, sim, "r")
        assert sorted(res.partitioned.keys.tolist()) == sorted(
            ji.r.keys.tolist())
        assert res.counters.atomic_ops == 0  # count-then-scatter
        assert res.counters.random_accesses > 0  # scattered writes

    def test_gbase_partition_flat_under_skew(self):
        """Gbase partition cost ignores skew (Table I row 5)."""
        sim1, sim2 = make_sim(), make_sim()
        lo = ZipfWorkload(50000, 1, theta=0.0, seed=1).generate()
        hi = ZipfWorkload(50000, 1, theta=1.0, seed=1).generate()
        t_lo = gbase_partition(lo.r.keys, lo.r.payloads, 4, 3, sim1, "r").seconds
        t_hi = gbase_partition(hi.r.keys, hi.r.payloads, 4, 3, sim2, "r").seconds
        assert t_hi == pytest.approx(t_lo, rel=0.01)

    def test_gsh_partition_grows_with_skew(self):
        """GSH's per-partition pass-2 blocks slow down on a giant
        partition (Table I row 7: 5.9 ms -> 24.5 ms)."""
        sim1, sim2 = make_sim(), make_sim()
        lo = ZipfWorkload(100000, 1, theta=0.0, seed=1).generate()
        hi = constant_key_input(100000, 1, seed=1)
        t_lo = gsh_partition(lo.r.keys, lo.r.payloads, 4, 3, sim1, "r").seconds
        t_hi = gsh_partition(hi.r.keys, hi.r.payloads, 4, 3, sim2, "r").seconds
        assert t_hi > 2 * t_lo


class TestGbasePipeline:
    def test_correct_on_fixtures(self, small_uniform, small_skewed,
                                 tiny_input):
        for ji in (small_uniform, small_skewed, tiny_input):
            assert_result_correct(GbaseJoin().run(ji), ji)

    def test_phases(self, small_uniform):
        res = GbaseJoin().run(small_uniform)
        assert [p.name for p in res.phases] == ["partition", "join"]
        assert res.meta["device"] == "A100-PCIE-40GB"

    def test_sublists_multiply_blocks_for_large_partitions(self):
        ji = constant_key_input(30000, 30000, seed=0)
        few = GbaseJoin(GbaseConfig(sublist_capacity=30000)).run(ji)
        many = GbaseJoin(GbaseConfig(sublist_capacity=1000)).run(ji)
        assert many.meta["join_blocks"] > few.meta["join_blocks"]
        assert many.matches(few)

    def test_join_time_rockets_with_skew(self):
        lo = ZipfWorkload(60000, 60000, theta=0.2, seed=2).generate()
        hi = ZipfWorkload(60000, 60000, theta=1.0, seed=2).generate()
        t_lo = GbaseJoin().run(lo).phase("join").simulated_seconds
        t_hi = GbaseJoin().run(hi).phase("join").simulated_seconds
        assert t_hi > 20 * t_lo

    def test_write_bitmap_costs_scale_with_chains(self):
        """Long chains mean more barriers and atomics per S tuple."""
        uni = uniform_input(20000, 20000, n_keys=20000, seed=3)
        skew = constant_key_input(20000, 20000, seed=3)
        c_uni = GbaseJoin().run(uni).phase("join").counters
        c_skew = GbaseJoin().run(skew).phase("join").counters
        assert c_skew.sync_barriers > 10 * c_uni.sync_barriers
        assert c_skew.atomic_ops > 10 * c_uni.atomic_ops

    def test_empty_input(self):
        from repro.data.relation import JoinInput, Relation
        ji = JoinInput(r=Relation.empty(), s=Relation.empty())
        res = GbaseJoin().run(ji)
        assert res.output_count == 0
