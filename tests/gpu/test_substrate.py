"""Tests for the GPU substrate: device, scheduler, warp model, simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.exec.counters import OpCounters
from repro.gpu.device import A100, DeviceSpec, V100_LIKE
from repro.gpu.kernel import BlockWork, uniform_grid
from repro.gpu.scheduler import (
    BlockGroup,
    makespan_from_block_seconds,
    makespan_from_groups,
)
from repro.gpu.simulator import GPUSimulator, cost_model_for
from repro.gpu.warp import lockstep_probe_rounds


class TestDevice:
    def test_a100_matches_paper_numbers(self):
        assert A100.sm_count == 108
        assert A100.global_mem_bytes == 40 * 1024**3
        assert A100.bandwidth == pytest.approx(1.555e12)
        assert A100.shared_mem_per_sm == 192 * 1024

    def test_shared_capacity_tuples(self):
        # 16 bytes per resident entry
        assert A100.shared_capacity_tuples == A100.shared_mem_per_block // 16

    def test_with_overrides(self):
        d = A100.with_overrides(sm_count=4)
        assert d.sm_count == 4
        assert A100.sm_count == 108

    def test_validation(self):
        with pytest.raises(ConfigError):
            DeviceSpec("bad", sm_count=0, shared_mem_per_block=1,
                       shared_mem_per_sm=1, l2_bytes=1,
                       global_mem_bytes=1, bandwidth=1.0)
        with pytest.raises(ConfigError):
            A100.with_overrides(threads_per_block=100)  # not warp multiple

    def test_fits_global(self):
        assert A100.fits_global(10**9)
        assert not A100.fits_global(10**12)


class TestScheduler:
    def test_empty(self):
        assert makespan_from_groups([], 10) == 0.0
        assert makespan_from_block_seconds(np.array([]), 10) == 0.0

    def test_single_group_small_exact(self):
        # 10 equal blocks on 4 SMs -> ceil(10/4)=3 waves
        m = makespan_from_groups([BlockGroup(10, 1.0)], 4)
        assert m == pytest.approx(3.0)

    def test_dominant_block(self):
        m = makespan_from_groups(
            [BlockGroup(1, 100.0), BlockGroup(50, 1.0)], 16)
        assert m == pytest.approx(100.0)

    def test_large_grid_uses_bounds(self):
        m = makespan_from_groups([BlockGroup(10**6, 1e-6)], 100)
        assert m == pytest.approx(10**6 * 1e-6 / 100)

    def test_group_validation(self):
        with pytest.raises(ConfigError):
            BlockGroup(-1, 1.0)
        with pytest.raises(ConfigError):
            makespan_from_groups([BlockGroup(1, 1.0)], 0)

    @given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=50),
           st.integers(1, 16))
    @settings(max_examples=40)
    def test_block_seconds_within_bounds(self, costs, sms):
        m = makespan_from_block_seconds(np.array(costs), sms)
        assert m >= max(costs) - 1e-12
        assert m >= sum(costs) / sms - 1e-12
        assert m <= sum(costs) / sms + max(costs) + 1e-9


class TestWarpModel:
    def test_empty(self):
        r = lockstep_probe_rounds(np.array([]), 32)
        assert r.rounds == 0 and r.paid_steps == 0

    def test_uniform_chains_have_no_divergence(self):
        r = lockstep_probe_rounds(np.full(64, 3), 32)
        assert r.rounds == 2
        assert r.useful_steps == 192
        assert r.paid_steps == 2 * 3 * 32
        assert r.divergent_steps == 0

    def test_one_long_chain_diverges_whole_round(self):
        lengths = np.ones(32, dtype=np.int64)
        lengths[0] = 100
        r = lockstep_probe_rounds(lengths, 32)
        assert r.rounds == 1
        assert r.paid_steps == 100 * 32
        assert r.useful_steps == 131
        assert r.divergent_steps == 100 * 32 - 131

    def test_partial_last_round_padded(self):
        r = lockstep_probe_rounds(np.array([5, 5, 5]), 2)
        assert r.rounds == 2
        assert r.paid_steps == (5 + 5) * 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            lockstep_probe_rounds(np.array([1]), 0)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200),
           st.integers(1, 64))
    @settings(max_examples=50)
    def test_paid_at_least_useful(self, lengths, threads):
        r = lockstep_probe_rounds(np.array(lengths), threads)
        assert r.paid_steps >= r.useful_steps
        assert r.divergent_steps == r.paid_steps - r.useful_steps


class TestSimulatorAndKernel:
    def test_uniform_grid_splits_remainder(self):
        work = uniform_grid(10, 4, OpCounters(hash_ops=1))
        assert [(w.count, w.counters.hash_ops) for w in work] == [
            (2, 4), (1, 2)]
        assert uniform_grid(0, 4, OpCounters()) == []
        with pytest.raises(ConfigError):
            uniform_grid(4, 0, OpCounters())

    def test_launch_records_timeline(self):
        sim = GPUSimulator(device=A100)
        launch = sim.launch("k1", [BlockWork(4, OpCounters(bytes_read=10**6))])
        assert launch.n_blocks == 4
        assert launch.seconds > 0
        assert sim.total_seconds == launch.seconds
        sim.launch("k2", [])
        assert len(sim.launches) == 2
        sim.reset()
        assert sim.launches == []

    def test_empty_launch_costs_only_overhead(self):
        sim = GPUSimulator(device=A100)
        launch = sim.launch("noop", [])
        assert launch.seconds == pytest.approx(
            sim.cost_model.kernel_launch_s)

    def test_bandwidth_bound_kernel_time(self):
        sim = GPUSimulator(device=A100)
        n_bytes = 10**9
        work = uniform_grid(1000, 1,
                            OpCounters(bytes_read=n_bytes // 1000))
        launch = sim.launch("stream", work)
        expected = n_bytes / sim.cost_model.effective_bandwidth
        assert launch.seconds == pytest.approx(expected, rel=0.3)

    def test_mismatched_sm_count_rejected(self):
        with pytest.raises(ConfigError):
            GPUSimulator(device=A100, cost_model=cost_model_for(V100_LIKE))

    def test_block_work_validation(self):
        with pytest.raises(ConfigError):
            BlockWork(-1, OpCounters())
