"""Tests for the power-law graph workloads."""

import numpy as np
import pytest

from repro.data.graph import (
    EdgeTable,
    count_two_hop_paths,
    power_law_graph,
    two_hop_join_input,
)
from repro.errors import WorkloadError
from tests.conftest import expected_summary


def test_power_law_graph_shapes():
    g = power_law_graph(1000, 5000, seed=1)
    assert len(g) == 5000
    assert g.n_vertices <= 1000
    assert g.src.dtype == np.uint32


def test_power_law_graph_rejects_bad_args():
    with pytest.raises(WorkloadError):
        power_law_graph(0, 10)
    with pytest.raises(WorkloadError):
        power_law_graph(10, 10, exponent=1.0)


def test_degrees_are_skewed():
    g = power_law_graph(2000, 40000, exponent=2.0, seed=3)
    deg = g.out_degrees()
    # the hottest vertex should dwarf the median degree
    assert deg.max() > 20 * max(np.median(deg[deg > 0]), 1)


def test_two_hop_join_counts_paths():
    g = EdgeTable(src=np.array([0, 1, 1, 2], np.uint32),
                  dst=np.array([1, 2, 3, 0], np.uint32))
    # paths: 0->1->2, 0->1->3, 1->2->0, 2->0->1
    assert count_two_hop_paths(g) == 4
    ji = two_hop_join_input(g)
    count, _ = expected_summary(ji)
    assert count == 4


def test_two_hop_output_pairs_are_endpoints():
    g = EdgeTable(src=np.array([0], np.uint32),
                  dst=np.array([1], np.uint32))
    g2 = EdgeTable(src=np.concatenate([g.src, [1]]).astype(np.uint32),
                   dst=np.concatenate([g.dst, [2]]).astype(np.uint32))
    ji = two_hop_join_input(g2)
    from repro.cpu import CbaseJoin
    res = CbaseJoin().run(ji)
    assert res.output_count == 1  # only 0->1->2


def test_join_count_matches_formula_on_random_graph():
    g = power_law_graph(500, 3000, seed=9)
    ji = two_hop_join_input(g)
    count, _ = expected_summary(ji)
    assert count == count_two_hop_paths(g)


def test_edge_table_validation():
    with pytest.raises(WorkloadError):
        EdgeTable(src=np.zeros(2, np.uint32), dst=np.zeros(3, np.uint32))


def test_empty_edge_table():
    g = EdgeTable(src=np.empty(0, np.uint32), dst=np.empty(0, np.uint32))
    assert g.n_vertices == 0
    assert count_two_hop_paths(g) == 0
