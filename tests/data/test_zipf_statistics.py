"""Statistical validation of the zipf generator against its target pmf."""

import numpy as np
import pytest
from scipy import stats

from repro.data.zipf import ZipfWorkload, zipf_probabilities


@pytest.mark.parametrize("theta", [0.0, 0.5, 1.0])
def test_chi_square_goodness_of_fit(theta):
    """Drawn counts must be consistent with the target zipf pmf."""
    n_keys = 50
    n = 200_000
    wl = ZipfWorkload(n, n, theta=theta, n_keys=n_keys, seed=123)
    counts = wl.sample_rank_counts(n)
    expected = zipf_probabilities(n_keys, theta) * n
    chi2, p_value = stats.chisquare(counts, expected)
    assert p_value > 1e-4, f"chi2={chi2}, p={p_value}"


def test_rank_frequency_ordering_statistical():
    """Head ranks should dominate tail ranks overwhelmingly."""
    wl = ZipfWorkload(100_000, 1, theta=1.0, n_keys=1000, seed=5)
    counts = wl.sample_rank_counts(100_000)
    assert counts[0] > counts[10] > counts[100]
    # rank-1 frequency ~ n / H(1000) ~ 13350
    expected = 100_000 * zipf_probabilities(1000, 1.0)[0]
    assert abs(counts[0] - expected) < 6 * np.sqrt(expected)


def test_materialized_table_matches_rank_counts_distribution():
    """Keys drawn by generate() follow the same distribution as
    sample_rank_counts (two independent draws, same pmf)."""
    n, n_keys, theta = 100_000, 40, 0.8
    wl = ZipfWorkload(n, n, theta=theta, n_keys=n_keys, seed=9)
    ji = wl.generate()
    key_counts = np.bincount(ji.r.keys, minlength=n_keys).astype(float)
    # map counts back to ranks via the key-of-rank table
    by_rank = key_counts[wl._key_of_rank]
    expected = zipf_probabilities(n_keys, theta) * n
    chi2, p_value = stats.chisquare(by_rank, expected)
    assert p_value > 1e-4


def test_r_and_s_hot_sets_overlap():
    """The shared interval/key arrays must align the two tables' heavy
    hitters (the paper's 'highly skewed case' requirement)."""
    wl = ZipfWorkload(50_000, 50_000, theta=1.0, seed=3)
    ji = wl.generate()
    top_r = set(np.argsort(np.bincount(ji.r.keys))[-10:].tolist())
    top_s = set(np.argsort(np.bincount(ji.s.keys))[-10:].tolist())
    assert len(top_r & top_s) >= 7


def test_poisson_approx_head_matches_exact_distribution():
    """zipf_rank_counts_approx's head should agree with exact draws in
    distribution (mean within sampling error for the hottest rank)."""
    from repro.data.zipf import zipf_rank_counts_approx
    n, n_keys, theta = 200_000, 5000, 0.9
    approx = zipf_rank_counts_approx(n, n_keys, theta, seed=1,
                                     exact_head=256)
    expected_top = zipf_probabilities(n_keys, theta)[0] * n
    assert abs(approx[0] - expected_top) < 6 * np.sqrt(expected_top)
