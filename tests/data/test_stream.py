"""Streamed generators: bit-identity with the bulk paths.

The streaming writers' whole contract is that peak memory changes but
the tuples do not: ``stream_zipf_input``/``stream_uniform_input`` must
equal their bulk counterparts bit for bit, and the sales streamer (its
own reference) must be independent of the chunk size.
"""

import numpy as np
import pytest

from repro.data import (
    ZipfWorkload,
    stream_sales_lineitems_input,
    stream_uniform_input,
    stream_zipf_input,
)
from repro.data.generators import uniform_input
from repro.data.stream import GENERATORS
from repro.errors import WorkloadError
from repro.store import open_join_input


def _load(directory):
    """Materialize a stored join input into plain arrays and close it."""
    join_input, store = open_join_input(directory)
    try:
        return {
            "r_keys": np.asarray(join_input.r.keys).copy(),
            "r_payloads": np.asarray(join_input.r.payloads).copy(),
            "s_keys": np.asarray(join_input.s.keys).copy(),
            "s_payloads": np.asarray(join_input.s.payloads).copy(),
            "meta": dict(join_input.meta),
            "names": (join_input.r.name, join_input.s.name),
        }
    finally:
        store.close()


@pytest.mark.parametrize("chunk_tuples", [64, 1000, 1 << 20])
def test_streamed_zipf_matches_bulk_bit_for_bit(tmp_path, chunk_tuples):
    n_r, n_s, theta, seed = 700, 2500, 1.05, 11
    bulk = ZipfWorkload(n_r=n_r, n_s=n_s, theta=theta, seed=seed).generate()
    stream_zipf_input(tmp_path, n_r, n_s, theta, seed=seed,
                      chunk_tuples=chunk_tuples)
    got = _load(tmp_path)
    np.testing.assert_array_equal(got["r_keys"], bulk.r.keys)
    np.testing.assert_array_equal(got["r_payloads"], bulk.r.payloads)
    np.testing.assert_array_equal(got["s_keys"], bulk.s.keys)
    np.testing.assert_array_equal(got["s_payloads"], bulk.s.payloads)
    assert got["meta"] == bulk.meta
    assert got["names"] == ("R", "S")


@pytest.mark.parametrize("chunk_tuples", [128, 999])
def test_streamed_uniform_matches_bulk_bit_for_bit(tmp_path, chunk_tuples):
    n_r, n_s, seed = 600, 1800, 3
    bulk = uniform_input(n_r, n_s, seed=seed)
    stream_uniform_input(tmp_path, n_r, n_s, seed=seed,
                         chunk_tuples=chunk_tuples)
    got = _load(tmp_path)
    np.testing.assert_array_equal(got["r_keys"], bulk.r.keys)
    np.testing.assert_array_equal(got["r_payloads"], bulk.r.payloads)
    np.testing.assert_array_equal(got["s_keys"], bulk.s.keys)
    np.testing.assert_array_equal(got["s_payloads"], bulk.s.payloads)
    assert got["meta"] == bulk.meta


def test_streamed_uniform_honors_explicit_key_domain(tmp_path):
    stream_uniform_input(tmp_path, 400, 400, n_keys=16, seed=9)
    got = _load(tmp_path)
    assert got["r_keys"].max() < 16
    assert got["s_keys"].max() < 16
    assert got["meta"]["n_keys"] == 16


def test_streamed_sales_is_chunk_size_independent(tmp_path):
    kwargs = dict(n_orders=500, n_line_items=2000, n_products=40, seed=7)
    stream_sales_lineitems_input(tmp_path / "a", chunk_tuples=64, **kwargs)
    stream_sales_lineitems_input(tmp_path / "b", chunk_tuples=1 << 20,
                                 **kwargs)
    a, b = _load(tmp_path / "a"), _load(tmp_path / "b")
    for column in ("r_keys", "r_payloads", "s_keys", "s_payloads"):
        np.testing.assert_array_equal(a[column], b[column])
    assert a["meta"] == b["meta"] == {"generator": "sales-stream",
                                      "join": "lineitems-orders"}
    # The PK side really is a primary key and the FK side references it.
    assert np.array_equal(np.sort(a["r_keys"]), np.arange(500))
    assert a["s_keys"].max() < 500


@pytest.mark.parametrize("bad", [
    lambda d: stream_zipf_input(d, 0, 10, 1.0),
    lambda d: stream_zipf_input(d, 10, -1, 1.0),
    lambda d: stream_uniform_input(d, 0, 10),
    lambda d: stream_sales_lineitems_input(d, n_orders=0),
    lambda d: stream_sales_lineitems_input(d, n_products=0),
])
def test_streamed_generators_reject_empty_tables(tmp_path, bad):
    with pytest.raises(WorkloadError):
        bad(tmp_path)


def test_generator_registry_names_the_three_streamers():
    assert GENERATORS == {
        "zipf": stream_zipf_input,
        "uniform": stream_uniform_input,
        "sales": stream_sales_lineitems_input,
    }
