"""Tests for the paper's interval-array zipf workload generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.zipf import (
    ZipfWorkload,
    clear_zipf_cache,
    zipf_cache_info,
    zipf_probabilities,
    zipf_rank_counts_approx,
)
from repro.errors import WorkloadError


def test_probabilities_sum_to_one():
    p = zipf_probabilities(1000, 0.9)
    assert p.sum() == pytest.approx(1.0)
    assert np.all(p > 0)


def test_theta_zero_is_uniform():
    p = zipf_probabilities(64, 0.0)
    assert np.allclose(p, 1 / 64)


def test_probabilities_strictly_decreasing_for_positive_theta():
    p = zipf_probabilities(100, 0.7)
    assert np.all(np.diff(p) < 0)


def test_probabilities_reject_bad_args():
    with pytest.raises(WorkloadError):
        zipf_probabilities(0, 1.0)
    with pytest.raises(WorkloadError):
        zipf_probabilities(10, -0.5)


def test_generate_shapes_and_dtypes():
    wl = ZipfWorkload(500, 700, theta=0.5, seed=1)
    ji = wl.generate()
    assert len(ji.r) == 500 and len(ji.s) == 700
    assert ji.r.keys.dtype == np.uint32
    assert ji.meta["theta"] == 0.5


def test_same_seed_same_tables():
    a = ZipfWorkload(300, 300, theta=1.0, seed=9).generate()
    b = ZipfWorkload(300, 300, theta=1.0, seed=9).generate()
    assert np.array_equal(a.r.keys, b.r.keys)
    assert np.array_equal(a.s.keys, b.s.keys)


def test_r_and_s_share_hot_keys_at_high_skew():
    """The shared interval/key arrays make both tables' heavy hitter the
    same key — the paper's 'highly skewed case' construction."""
    wl = ZipfWorkload(20000, 20000, theta=1.0, seed=4)
    ji = wl.generate()
    r_top = np.bincount(ji.r.keys).argmax()
    s_top = np.bincount(ji.s.keys).argmax()
    assert r_top == s_top == wl.key_for_rank(1)


def test_hot_key_frequency_tracks_zipf_head():
    n = 50000
    wl = ZipfWorkload(n, n, theta=1.0, seed=2)
    ji = wl.generate()
    top_count = np.bincount(ji.r.keys).max()
    expected = wl.probabilities[0] * n
    assert abs(top_count - expected) < 5 * np.sqrt(expected) + 10


def test_key_for_rank_bounds():
    wl = ZipfWorkload(10, 10, theta=0.5, seed=0)
    with pytest.raises(WorkloadError):
        wl.key_for_rank(0)
    with pytest.raises(WorkloadError):
        wl.key_for_rank(11)


def test_sample_rank_counts_totals():
    wl = ZipfWorkload(1000, 1000, theta=0.8, seed=7)
    counts = wl.sample_rank_counts(12345)
    assert counts.sum() == 12345
    assert counts[0] >= counts[100]  # rank 1 should dominate rank 101


def test_histograms_align_keys():
    wl = ZipfWorkload(2000, 3000, theta=0.6, seed=5)
    hr, hs = wl.histograms()
    assert hr.total == 2000
    assert hs.total == 3000
    assert np.array_equal(hr.keys, hs.keys)


def test_negative_sizes_rejected():
    with pytest.raises(WorkloadError):
        ZipfWorkload(-1, 10, theta=0.5)


def test_rank_counts_approx_total_close():
    n = 200000
    counts = zipf_rank_counts_approx(n, 50000, 0.9, seed=3, exact_head=1024)
    assert abs(int(counts.sum()) - n) < 0.02 * n
    assert counts[0] > counts[1000]


def test_rank_counts_approx_head_is_stochastic_tail_expected():
    counts = zipf_rank_counts_approx(10000, 1000, 0.5, seed=1, exact_head=10)
    assert counts.size == 1000
    assert np.all(counts >= 0)


@given(st.integers(1, 2000), st.floats(0.0, 1.2))
@settings(max_examples=30, deadline=None)
def test_probabilities_normalized_property(n_keys, theta):
    p = zipf_probabilities(n_keys, theta)
    assert p.size == n_keys
    assert p.sum() == pytest.approx(1.0, rel=1e-9)


def test_table_cache_hits_on_repeat_shapes():
    clear_zipf_cache()
    a = zipf_probabilities(512, 0.9)
    info = zipf_cache_info()
    assert info["misses"] == 1 and info["hits"] == 0
    b = zipf_probabilities(512, 0.9)
    info = zipf_cache_info()
    assert info["hits"] == 1 and info["size"] == 1
    assert a is b  # the cached array itself, not a rebuild
    zipf_probabilities(512, 1.0)  # different theta -> new entry
    assert zipf_cache_info() == {"hits": 1, "misses": 2, "size": 2,
                                 "max_size": 64}
    clear_zipf_cache()
    assert zipf_cache_info()["size"] == 0


def test_cached_tables_are_read_only():
    p = zipf_probabilities(64, 0.5)
    assert not p.flags.writeable
    with pytest.raises(ValueError):
        p[0] = 0.0


def test_workloads_share_cached_tables():
    clear_zipf_cache()
    w1 = ZipfWorkload(1000, 1000, theta=1.0, seed=1)
    w2 = ZipfWorkload(1000, 1000, theta=1.0, seed=2)
    assert w1.probabilities is w2.probabilities
    # Sharing must not change what is generated.
    ji = w1.generate()
    assert len(ji.r) == 1000
    assert np.array_equal(
        ji.r.keys, ZipfWorkload(1000, 1000, theta=1.0, seed=1).generate().r.keys)
