"""Tests for the sales-schema workload generator."""

import numpy as np
import pytest

from repro.cpu.stats import heavy_key_share
from repro.data.sales import generate_sales
from repro.errors import WorkloadError
from tests.conftest import assert_result_correct, expected_summary


@pytest.fixture(scope="module")
def sales():
    return generate_sales(n_customers=2000, n_orders=20000,
                          n_line_items=50000, seed=7)


def test_shapes(sales):
    assert len(sales.customers) == 2000
    assert len(sales.orders) == 20000
    assert len(sales.line_items) == 50000


def test_fk_domains(sales):
    assert sales.orders.keys.max() < 2000
    assert sales.line_items.keys.max() < 20000
    assert sales.customers.payloads.max() < sales.n_regions


def test_customer_pk_unique(sales):
    assert np.unique(sales.customers.keys).size == 2000


def test_orders_are_skewed(sales):
    """The top accounts must dominate, unlike a uniform FK."""
    assert heavy_key_share(sales.orders.keys, top_k=20) > 0.15


def test_orders_join_is_pk_fk(sales):
    """Every order matches exactly one customer: output == |orders|."""
    ji = sales.orders_with_customers()
    count, _ = expected_summary(ji)
    assert count == len(sales.orders)


def test_line_items_join_is_pk_fk(sales):
    ji = sales.line_items_with_orders()
    count, _ = expected_summary(ji)
    assert count == len(sales.line_items)


def test_all_algorithms_agree_on_sales_join(sales):
    from repro import run_all
    ji = sales.orders_with_customers()
    results = run_all(ji)
    for res in results.values():
        assert_result_correct(res, ji)


def test_determinism():
    a = generate_sales(n_customers=100, n_orders=500, n_line_items=800,
                       seed=3)
    b = generate_sales(n_customers=100, n_orders=500, n_line_items=800,
                       seed=3)
    assert np.array_equal(a.orders.keys, b.orders.keys)
    assert np.array_equal(a.line_items.payloads, b.line_items.payloads)


def test_validation():
    with pytest.raises(WorkloadError):
        generate_sales(n_customers=0)
