"""Tests for key histograms and ground-truth join summaries."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.generators import input_from_frequencies
from repro.data.histogram import (
    KeyHistogram,
    join_output_checksum,
    join_output_count,
)
from repro.data.relation import Relation
from repro.errors import WorkloadError

U64 = (1 << 64) - 1


def test_from_relation_counts():
    rel = Relation.from_keys(np.array([3, 1, 3, 3, 2], np.uint32), seed=0)
    hist = KeyHistogram.from_relation(rel)
    assert hist.total == 5
    assert hist.distinct == 3
    assert hist.count_of(3) == 3
    assert hist.count_of(99) == 0


def test_histogram_sorts_unsorted_input():
    hist = KeyHistogram(np.array([5, 1, 3]), np.array([1, 2, 3]))
    assert hist.keys.tolist() == [1, 3, 5]
    assert hist.counts.tolist() == [2, 3, 1]


def test_histogram_rejects_duplicates_and_negatives():
    with pytest.raises(WorkloadError):
        KeyHistogram(np.array([1, 1]), np.array([2, 3]))
    with pytest.raises(WorkloadError):
        KeyHistogram(np.array([1, 2]), np.array([1, -1]))


def test_top_k():
    hist = KeyHistogram(np.array([1, 2, 3]), np.array([5, 9, 1]))
    keys, counts = hist.top_k(2)
    assert keys.tolist() == [2, 1]
    assert counts.tolist() == [9, 5]
    assert hist.top_k(0)[0].size == 0
    assert hist.top_k(10)[0].size == 3


def test_align_with():
    a = KeyHistogram(np.array([1, 2, 3]), np.array([1, 2, 3]))
    b = KeyHistogram(np.array([2, 3, 4]), np.array([20, 30, 40]))
    shared, ca, cb = a.align_with(b)
    assert shared.tolist() == [2, 3]
    assert ca.tolist() == [2, 3]
    assert cb.tolist() == [20, 30]


def test_join_output_count_simple():
    ji = input_from_frequencies([2, 3, 0], [4, 0, 5], seed=0)
    hr = KeyHistogram.from_relation(ji.r)
    hs = KeyHistogram.from_relation(ji.s)
    assert join_output_count(hr, hs) == 2 * 4


def test_join_output_count_huge_values_use_object_math():
    hr = KeyHistogram(np.array([1]), np.array([2**40]))
    hs = KeyHistogram(np.array([1]), np.array([2**40]))
    assert join_output_count(hr, hs) == 2**80


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 200)),
                min_size=0, max_size=25),
       st.lists(st.tuples(st.integers(0, 5), st.integers(0, 200)),
                min_size=0, max_size=25))
@settings(max_examples=80)
def test_checksum_matches_pairwise_definition(r_list, s_list):
    rk = np.array([t[0] for t in r_list], dtype=np.uint32)
    rp = np.array([t[1] for t in r_list], dtype=np.uint32)
    sk = np.array([t[0] for t in s_list], dtype=np.uint32)
    sp = np.array([t[1] for t in s_list], dtype=np.uint32)
    r = Relation(rk, rp)
    s = Relation(sk, sp)
    expect = 0
    for a, pa in zip(rk, rp):
        for b, pb in zip(sk, sp):
            if a == b:
                expect = (expect + int(pa) * int(pb)) & U64
    assert join_output_checksum(r, s) == expect
