"""Tests for relation/join-input persistence."""

import numpy as np
import pytest

from repro.data.generators import uniform_input
from repro.data.io import (
    load_join_input,
    load_relation,
    save_join_input,
    save_relation,
)
from repro.data.relation import Relation
from repro.data.zipf import ZipfWorkload
from repro.errors import WorkloadError


def test_relation_round_trip(tmp_path):
    rel = Relation.from_keys(np.arange(1000, dtype=np.uint32), seed=1,
                             name="my_table")
    path = tmp_path / "rel.npz"
    save_relation(rel, path)
    loaded = load_relation(path)
    assert loaded.name == "my_table"
    assert np.array_equal(loaded.keys, rel.keys)
    assert np.array_equal(loaded.payloads, rel.payloads)


def test_join_input_round_trip(tmp_path):
    ji = ZipfWorkload(5000, 4000, theta=0.9, seed=2).generate()
    path = tmp_path / "input.npz"
    save_join_input(ji, path)
    loaded = load_join_input(path)
    assert np.array_equal(loaded.r.keys, ji.r.keys)
    assert np.array_equal(loaded.s.payloads, ji.s.payloads)
    assert loaded.r.name == ji.r.name
    assert "theta" in loaded.meta


def test_loaded_input_joins_identically(tmp_path):
    from repro.cpu import CbaseJoin
    ji = uniform_input(3000, 3000, seed=4)
    path = tmp_path / "input.npz"
    save_join_input(ji, path)
    loaded = load_join_input(path)
    assert CbaseJoin().run(loaded).matches(CbaseJoin().run(ji))


def test_kind_mismatch_rejected(tmp_path):
    rel = Relation.from_keys(np.arange(10, dtype=np.uint32), seed=0)
    path = tmp_path / "rel.npz"
    save_relation(rel, path)
    with pytest.raises(WorkloadError):
        load_join_input(path)


def test_non_archive_rejected(tmp_path):
    path = tmp_path / "junk.npz"
    np.savez(path, foo=np.arange(3))
    with pytest.raises(WorkloadError):
        load_relation(path)
