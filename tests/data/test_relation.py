"""Tests for Relation and JoinInput."""

import numpy as np
import pytest

from repro.data.relation import JoinInput, Relation
from repro.errors import WorkloadError


def test_relation_enforces_dtypes():
    rel = Relation(np.array([1, 2], dtype=np.int64),
                   np.array([3, 4], dtype=np.int64))
    assert rel.keys.dtype == np.uint32
    assert rel.payloads.dtype == np.uint32


def test_relation_rejects_mismatched_columns():
    with pytest.raises(WorkloadError):
        Relation(np.zeros(3, np.uint32), np.zeros(2, np.uint32))


def test_relation_rejects_2d():
    with pytest.raises(WorkloadError):
        Relation(np.zeros((2, 2), np.uint32), np.zeros((2, 2), np.uint32))


def test_len_and_nbytes():
    rel = Relation.from_keys(np.arange(10, dtype=np.uint32), seed=0)
    assert len(rel) == 10
    assert rel.nbytes == 80


def test_take_and_slice():
    rel = Relation(np.arange(6, dtype=np.uint32),
                   np.arange(6, dtype=np.uint32) * 10)
    taken = rel.take(np.array([1, 3]))
    assert taken.keys.tolist() == [1, 3]
    assert taken.payloads.tolist() == [10, 30]
    sliced = rel.slice(2, 4)
    assert sliced.keys.tolist() == [2, 3]


def test_concat():
    a = Relation.from_keys(np.array([1], np.uint32), seed=0)
    b = Relation.from_keys(np.array([2], np.uint32), seed=0)
    c = a.concat(b)
    assert c.keys.tolist() == [1, 2]
    assert len(c) == 2


def test_empty():
    rel = Relation.empty()
    assert len(rel) == 0


def test_from_keys_deterministic_payloads():
    keys = np.array([5, 6, 7], dtype=np.uint32)
    a = Relation.from_keys(keys, seed=3)
    b = Relation.from_keys(keys, seed=3)
    assert np.array_equal(a.payloads, b.payloads)


def test_join_input_swapped():
    ji = JoinInput(
        r=Relation.from_keys(np.array([1], np.uint32), seed=0, name="R"),
        s=Relation.from_keys(np.array([2], np.uint32), seed=0, name="S"),
        meta={"x": 1},
    )
    sw = ji.swapped()
    assert sw.r.name == "S" and sw.s.name == "R"
    assert sw.meta == {"x": 1}
