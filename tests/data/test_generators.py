"""Tests for the auxiliary workload generators."""

import numpy as np
import pytest

from repro.data.generators import (
    constant_key_input,
    input_from_frequencies,
    sequential_input,
    uniform_input,
)
from repro.errors import WorkloadError


def test_uniform_sizes_and_key_range():
    ji = uniform_input(100, 200, n_keys=50, seed=1)
    assert len(ji.r) == 100 and len(ji.s) == 200
    assert ji.r.keys.max() < 50
    assert ji.s.keys.max() < 50


def test_uniform_default_key_domain():
    ji = uniform_input(64, 32, seed=0)
    assert ji.meta["n_keys"] == 64


def test_sequential_is_pk_fk():
    ji = sequential_input(128, seed=2)
    assert sorted(ji.r.keys.tolist()) == list(range(128))
    assert sorted(ji.s.keys.tolist()) == list(range(128))
    # every S key matches exactly one R key -> output = n
    from tests.conftest import expected_summary
    count, _ = expected_summary(ji)
    assert count == 128


def test_constant_key_is_full_cartesian():
    ji = constant_key_input(6, 7, key=42, seed=0)
    assert np.all(ji.r.keys == 42)
    from tests.conftest import expected_summary
    count, _ = expected_summary(ji)
    assert count == 42


def test_input_from_frequencies_exact_counts():
    ji = input_from_frequencies([3, 0, 2], [1, 4, 2], seed=0)
    r_counts = np.bincount(ji.r.keys, minlength=3)
    s_counts = np.bincount(ji.s.keys, minlength=3)
    assert r_counts.tolist() == [3, 0, 2]
    assert s_counts.tolist() == [1, 4, 2]


def test_input_from_frequencies_custom_keys():
    ji = input_from_frequencies([2], [3], keys=[77], seed=0)
    assert np.all(ji.r.keys == 77)
    assert np.all(ji.s.keys == 77)


def test_input_from_frequencies_validation():
    with pytest.raises(WorkloadError):
        input_from_frequencies([1, 2], [1])
    with pytest.raises(WorkloadError):
        input_from_frequencies([-1], [1])
    with pytest.raises(WorkloadError):
        input_from_frequencies([1, 1], [1, 1], keys=[5, 5])
    with pytest.raises(WorkloadError):
        input_from_frequencies([1, 1], [1, 1], keys=[5])


def test_input_from_frequencies_unshuffled_order():
    ji = input_from_frequencies([2, 1], [0, 1], shuffle=False, seed=0)
    assert ji.r.keys.tolist() == [0, 0, 1]
    assert ji.s.keys.tolist() == [1]
