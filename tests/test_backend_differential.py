"""Differential matrix: scalar and vector backends must be bit-identical.

Every algorithm x dataset cell runs the full pipeline once per backend
and requires identical output counts, checksums, phase structure, per-
phase operation counters, simulated seconds, and metadata (modulo the
backend tag itself).  Wall time is the only field allowed to differ.
"""

import pytest

from repro.api import ALGORITHMS, make_join
from repro.exec.backend import SCALAR, VECTOR, use_backend
from repro.exec.differential import (
    compare_results,
    default_datasets,
    differential_matrix,
    render_differential,
    run_differential,
)

_N = 1 << 10

_DATASETS = sorted(default_datasets(_N))


@pytest.fixture(scope="module")
def datasets():
    return default_datasets(_N)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("dataset", _DATASETS)
def test_backends_bit_identical(algorithm, dataset, datasets):
    join_input = datasets[dataset]
    report = run_differential(
        lambda: make_join(algorithm).run(join_input),
        algorithm=algorithm, dataset=dataset,
    )
    assert report.ok, "\n".join(report.mismatches)


def test_backend_tag_lands_in_meta(datasets):
    join_input = datasets["zipf-1.0"]
    with use_backend(SCALAR):
        scalar_result = make_join("cbase").run(join_input)
    with use_backend(VECTOR):
        vector_result = make_join("cbase").run(join_input)
    assert scalar_result.meta["backend"] == SCALAR
    assert vector_result.meta["backend"] == VECTOR


def test_compare_results_flags_divergence(datasets):
    join_input = datasets["uniform"]
    a = make_join("cbase").run(join_input)
    b = make_join("cbase").run(join_input)
    assert compare_results(a, b) == []
    b.output_count += 1
    b.phases[0].counters.hash_ops += 7
    issues = compare_results(a, b)
    assert any("output_count" in i for i in issues)
    assert any("hash_ops" in i for i in issues)


def test_matrix_runs_and_renders():
    reports = differential_matrix(n=256, algorithms=["cbase-npj"])
    assert len(reports) == len(_DATASETS)
    assert all(r.ok for r in reports)
    text = render_differential(reports)
    assert "bit-identical" in text
    assert "cbase-npj" in text
