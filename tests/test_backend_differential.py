"""Differential matrix: all execution backends must be bit-identical.

Every algorithm x dataset cell runs the full pipeline once per backend
(scalar, vector, parallel) and requires identical output counts,
checksums, phase structure, per-phase operation counters, simulated
seconds, and metadata (modulo the backend tag itself).  Wall time is the
only field allowed to differ.

The parametrized grid runs the parallel backend under the ambient
environment (on small inputs it gates down to the inline vector path);
``test_parallel_pool_is_bit_identical`` additionally forces a real
two-process pool through the ``parallel_pool_env`` fixture.
"""

import pytest

from repro.api import ALGORITHMS, make_join
from repro.exec.backend import PARALLEL, SCALAR, VECTOR, use_backend
from repro.exec.differential import (
    compare_results,
    default_datasets,
    differential_matrix,
    render_differential,
    run_differential,
)

_N = 1 << 10

_DATASETS = sorted(default_datasets(_N))


@pytest.fixture(scope="module")
def datasets():
    return default_datasets(_N)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("dataset", _DATASETS)
def test_backends_bit_identical(algorithm, dataset, datasets):
    join_input = datasets[dataset]
    report = run_differential(
        lambda: make_join(algorithm).run(join_input),
        algorithm=algorithm, dataset=dataset,
    )
    assert report.ok, "\n".join(report.mismatches)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_parallel_pool_is_bit_identical(algorithm, datasets,
                                        parallel_pool_env):
    """Vector vs parallel with a real two-process pool engaged.

    The fixture pins ``REPRO_WORKERS=2`` and zeroes the engagement
    threshold, so every parallelized phase actually crosses the process
    boundary through shared memory — the configuration the parametrized
    grid above cannot reach on a small input.
    """
    join_input = datasets["zipf-1.0"]
    report = run_differential(
        lambda: make_join(algorithm).run(join_input),
        algorithm=algorithm, dataset="zipf-1.0",
        backends=(VECTOR, PARALLEL),
    )
    assert report.ok, "\n".join(report.mismatches)


def test_backend_tag_lands_in_meta(datasets):
    join_input = datasets["zipf-1.0"]
    results = {}
    for backend in (SCALAR, VECTOR, PARALLEL):
        with use_backend(backend):
            results[backend] = make_join("cbase").run(join_input)
    for backend, result in results.items():
        assert result.meta["backend"] == backend


def test_compare_results_flags_divergence(datasets):
    join_input = datasets["uniform"]
    a = make_join("cbase").run(join_input)
    b = make_join("cbase").run(join_input)
    assert compare_results(a, b) == []
    b.output_count += 1
    b.phases[0].counters.hash_ops += 7
    issues = compare_results(a, b)
    assert any("output_count" in i for i in issues)
    assert any("hash_ops" in i for i in issues)


def test_matrix_runs_and_renders():
    reports = differential_matrix(n=256, algorithms=["cbase-npj"])
    assert len(reports) == len(_DATASETS)
    assert all(r.ok for r in reports)
    text = render_differential(reports)
    assert "bit-identical" in text
    assert "cbase-npj" in text
