"""The chaos-under-load harness itself stays green end to end."""

import json

from repro.serve.chaos import run_serve_chaos


def test_serve_chaos_sweep_is_green_and_writes_health(tmp_path):
    health_out = tmp_path / "health.json"
    exit_code = run_serve_chaos(n=2048, theta=1.0, seed=7, clients=2,
                                requests=6, health_out=health_out,
                                quiet=True)
    assert exit_code == 0
    artifact = json.loads(health_out.read_text())
    assert artifact["health"]["ok"] is True
    assert artifact["health"]["metrics"]["serve.health.inflight"] == 0
    checks = artifact["checks"]
    assert checks and all(check["ok"] for check in checks)
