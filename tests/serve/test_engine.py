"""Engine semantics: cold/warm identity, admission, faults, versions."""

import asyncio

import pytest

from repro.api import make_join
from repro.data.zipf import ZipfWorkload
from repro.errors import AdmissionError, ServeError, UnrecoveredFaultError
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.report import verify_result_faults
from repro.obs import verify_result_trace
from repro.serve.admission import AdmissionController
from repro.serve.engine import ProbeRequest, ServeEngine

N = 2048
THETA = 1.0
SEED = 42


@pytest.fixture(scope="module")
def workload():
    return ZipfWorkload(N, N, THETA, seed=SEED).generate()


@pytest.fixture()
def engine(workload):
    eng = ServeEngine()
    eng.register("orders", workload.r)
    return eng


def probe(engine, workload, **kwargs):
    return engine.probe_sync(
        ProbeRequest(relation_id="orders", probe=workload.s, **kwargs))


def test_served_answer_matches_direct_run(engine, workload):
    direct = make_join("cbase").run(workload)
    outcome = probe(engine, workload)
    assert outcome.result.output_count == direct.output_count
    assert outcome.result.output_checksum == direct.output_checksum


def test_cold_then_warm_have_identical_answers(engine, workload):
    cold = probe(engine, workload)
    warm = probe(engine, workload)
    assert cold.summary.count == warm.summary.count
    assert cold.summary.checksum == warm.summary.checksum
    assert not cold.cache_hit and warm.cache_hit


def test_warm_probe_skips_the_build_phase(engine, workload):
    cold = probe(engine, workload)
    warm = probe(engine, workload)
    assert [p.name for p in cold.result.phases] == ["build", "probe"]
    assert [p.name for p in warm.result.phases] == ["probe"]
    # The missing build span is the observable "skipped the build" proof.
    assert cold.result.trace.phase_names() == ["build", "probe"]
    assert warm.result.trace.phase_names() == ["probe"]
    assert warm.result.simulated_seconds < cold.result.simulated_seconds


def test_cache_metrics_mark_hit_and_miss(engine, workload):
    cold = probe(engine, workload)
    warm = probe(engine, workload)
    assert cold.result.trace.metric_value("serve.cache_miss") == 1
    assert cold.result.trace.metric_value("serve.cache_hit") == 0
    assert warm.result.trace.metric_value("serve.cache_hit") == 1
    assert warm.result.trace.metric_value("serve.cache_miss") == 0
    assert warm.result.meta["cache_hit"] is True


def test_traces_stay_internally_consistent(engine, workload):
    for outcome in (probe(engine, workload), probe(engine, workload)):
        assert verify_result_trace(outcome.result) is None
        assert verify_result_faults(outcome.result) is None


def test_morsel_budget_controls_chunk_count(engine, workload):
    outcome = probe(engine, workload, morsel_tuples=256)
    assert len(outcome.chunks) == N // 256
    assert [c["index"] for c in outcome.chunks] == list(range(N // 256))
    assert sum(c["tuples"] for c in outcome.chunks) == N
    assert sum(c["count"] for c in outcome.chunks) == \
        outcome.result.output_count


def test_chunking_never_changes_the_answer(engine, workload):
    whole = probe(engine, workload)
    chunked = probe(engine, workload, morsel_tuples=64)
    assert chunked.summary.count == whole.summary.count
    assert chunked.summary.checksum == whole.summary.checksum


def test_concurrent_cold_probes_build_exactly_once(workload):
    engine = ServeEngine()
    engine.register("orders", workload.r)

    async def race():
        return await asyncio.gather(*[
            engine.probe(ProbeRequest(relation_id="orders",
                                      probe=workload.s))
            for _ in range(4)])

    outcomes = asyncio.run(race())
    assert engine.cache.info()["builds"] == 1
    summaries = {(o.result.output_count, o.result.output_checksum)
                 for o in outcomes}
    assert len(summaries) == 1
    # Exactly one request ran the build phase; the rest piggybacked.
    built = [o for o in outcomes
             if [p.name for p in o.result.phases] == ["build", "probe"]]
    assert len(built) == 1
    assert sum(1 for o in outcomes if o.result.meta["build_shared"]) == 3


def test_version_bump_serves_new_data_and_invalidates_stale(workload):
    engine = ServeEngine()
    v1 = engine.register("orders", workload.r)
    probe(engine, workload)
    assert engine.cache.peek(("orders", 1)) is not None
    replacement = ZipfWorkload(N, N, 0.0, seed=7).generate()
    v2 = engine.register("orders", replacement.r)
    assert (v1, v2) == (1, 2)
    assert engine.cache.peek(("orders", 1)) is None
    outcome = probe(engine, workload)
    assert outcome.result.meta["version"] == 2
    assert not outcome.cache_hit
    direct = make_join("cbase").run(
        type(workload)(r=replacement.r, s=workload.s))
    assert outcome.result.output_count == direct.output_count
    assert outcome.result.output_checksum == direct.output_checksum


def test_unknown_relation_and_version_raise_typed_errors(engine, workload):
    with pytest.raises(ServeError) as err:
        probe(ServeEngine(), workload)
    assert "register" in str(err.value)
    with pytest.raises(ServeError) as err:
        probe(engine, workload, version=9)
    assert err.value.context["latest"] == 1


def test_admission_refuses_over_budget_probes(workload):
    engine = ServeEngine(
        admission=AdmissionController(max_morsels=4))
    engine.register("orders", workload.r)
    with pytest.raises(AdmissionError) as err:
        probe(engine, workload, morsel_tuples=64)
    assert err.value.context["max_morsels"] == 4
    assert engine.admission.rejected == 1
    assert engine.failed == 1
    # A within-budget probe still succeeds afterwards.
    assert probe(engine, workload).result.output_count > 0


def test_saturated_server_sheds_load(workload):
    engine = ServeEngine(
        admission=AdmissionController(max_inflight=1, max_queue=0))
    engine.register("orders", workload.r)

    async def flood():
        results = await asyncio.gather(
            *[engine.probe(ProbeRequest(relation_id="orders",
                                        probe=workload.s,
                                        morsel_tuples=64))
              for _ in range(4)],
            return_exceptions=True)
        return results

    results = asyncio.run(flood())
    refused = [r for r in results if isinstance(r, AdmissionError)]
    served = [r for r in results if not isinstance(r, Exception)]
    assert refused and served
    assert len(refused) + len(served) == 4
    assert engine.admission.rejected == len(refused)


def test_recovered_fault_leaves_answer_identical(engine, workload):
    clean = probe(engine, workload)
    plan = FaultPlan((FaultSpec(kind="worker-crash", point="task"),))
    faulty = probe(engine, workload, faults=plan)
    assert faulty.summary.count == clean.summary.count
    assert faulty.summary.checksum == clean.summary.checksum
    assert len(faulty.result.faults) == 1
    assert faulty.result.faults[0].recovered
    assert verify_result_faults(faulty.result) is None


def test_exhausted_retries_raise_unrecovered_with_report(engine, workload):
    plan = FaultPlan(
        (FaultSpec(kind="worker-crash", point="task", repeat=9),))
    with pytest.raises(UnrecoveredFaultError) as err:
        probe(engine, workload, faults=plan)
    assert err.value.report is not None
    assert not err.value.report.recovered
    assert engine.failed == 1
    # The engine still answers cleanly afterwards.
    assert probe(engine, workload).cache_hit


def test_build_capacity_fault_regrows_and_recovers(workload):
    engine = ServeEngine()
    engine.register("orders", workload.r)
    plan = FaultPlan(
        (FaultSpec(kind="capacity-overflow", point="capacity"),))
    outcome = probe(engine, workload, faults=plan)
    direct = make_join("cbase").run(workload)
    assert outcome.result.output_count == direct.output_count
    assert len(outcome.result.faults) == 1
    assert outcome.result.faults[0].action == "regrow"


def test_stats_snapshot_counts_requests(engine, workload):
    probe(engine, workload)
    probe(engine, workload)
    stats = engine.stats()
    assert stats["requests"] == 2
    assert stats["completed"] == 2
    assert stats["relations"] == {"orders": 1}
    assert stats["cache"]["hits"] == 1
    assert stats["admission"]["admitted"] == 2
