"""Admission control boundary conditions and slot accounting."""

import asyncio

import pytest

from repro.data.zipf import ZipfWorkload
from repro.errors import (
    AdmissionError,
    CircuitOpen,
    ConfigError,
    DeadlineExceeded,
    UnrecoveredFaultError,
)
from repro.faults.plan import FaultPlan, FaultSpec
from repro.serve.admission import (
    AdmissionController,
    DEFAULT_MORSEL_TUPLES,
    MAX_MORSEL_TUPLES,
    MIN_MORSEL_TUPLES,
)
from repro.serve.engine import ProbeRequest, ServeEngine

N = 2048


@pytest.fixture(scope="module")
def workload():
    return ZipfWorkload(N, N, 1.0, seed=42).generate()


# ------------------------------------------------------------ validation

def test_constructor_rejects_degenerate_limits():
    with pytest.raises(ConfigError):
        AdmissionController(max_inflight=0)
    with pytest.raises(ConfigError):
        AdmissionController(max_queue=-1)
    with pytest.raises(ConfigError):
        AdmissionController(max_morsels=0)
    # max_queue=0 is legal: no waiting room, refuse beyond inflight.
    assert AdmissionController(max_queue=0).max_queue == 0


def test_morsel_tuples_clamp_to_hard_bounds():
    clamp = AdmissionController.clamp_morsel_tuples
    assert clamp(None) == DEFAULT_MORSEL_TUPLES
    assert clamp(1) == MIN_MORSEL_TUPLES
    assert clamp(MIN_MORSEL_TUPLES) == MIN_MORSEL_TUPLES
    assert clamp(MIN_MORSEL_TUPLES - 1) == MIN_MORSEL_TUPLES
    assert clamp(MAX_MORSEL_TUPLES) == MAX_MORSEL_TUPLES
    assert clamp(MAX_MORSEL_TUPLES + 1) == MAX_MORSEL_TUPLES
    assert clamp(1 << 40) == MAX_MORSEL_TUPLES


def test_morsel_count_budget_boundary():
    admission = AdmissionController(max_morsels=4)
    # Exactly at budget: admitted.
    assert admission.morsel_count(4 * 64, 64) == 4
    assert admission.rejected == 0
    # One tuple over: one more morsel than the budget allows.
    with pytest.raises(AdmissionError) as excinfo:
        admission.morsel_count(4 * 64 + 1, 64)
    assert excinfo.value.context["n_morsels"] == 5
    assert excinfo.value.context["max_morsels"] == 4
    assert admission.rejected == 1
    # The empty probe needs no morsels at all.
    assert admission.morsel_count(0, 64) == 0


def test_queueing_at_the_inflight_limit_then_refusal():
    """inflight == max_inflight with queue space queues; once the queue
    is full too, admission refuses immediately (no waiting)."""
    admission = AdmissionController(max_inflight=1, max_queue=1)

    async def scenario():
        release = asyncio.Event()
        order = []

        async def hold(name):
            async with admission.admit():
                order.append(name)
                await release.wait()

        first = asyncio.ensure_future(hold("first"))
        await asyncio.sleep(0)
        assert admission.inflight == 1
        # Second request queues: within max_queue.
        second = asyncio.ensure_future(hold("second"))
        await asyncio.sleep(0)
        assert admission.queued == 1
        # Third finds both limits hit: immediate typed refusal.
        with pytest.raises(AdmissionError) as excinfo:
            async with admission.admit():
                pass
        assert excinfo.value.context["inflight"] == 1
        assert excinfo.value.context["queued"] == 1
        release.set()
        await asyncio.gather(first, second)
        return excinfo.value, order

    error, order = asyncio.run(scenario())
    assert order == ["first", "second"]  # the queued request did run
    assert admission.inflight == 0
    assert admission.queued == 0
    assert admission.admitted == 2
    assert admission.rejected == 1


def test_zero_queue_refuses_at_the_inflight_limit():
    admission = AdmissionController(max_inflight=1, max_queue=0)

    async def scenario():
        release = asyncio.Event()

        async def hold():
            async with admission.admit():
                await release.wait()

        task = asyncio.ensure_future(hold())
        await asyncio.sleep(0)
        with pytest.raises(AdmissionError):
            async with admission.admit():
                pass
        release.set()
        await task

    asyncio.run(scenario())
    assert admission.admitted == 1
    assert admission.rejected == 1


def test_slot_released_on_every_typed_error_exit(workload):
    """The admission slot must come back whatever way a request dies."""
    engine = ServeEngine(circuit_threshold=1, circuit_reset_seconds=3600.0)
    engine.register("orders", workload.r)

    def attempt(**kwargs):
        with pytest.raises(Exception) as excinfo:
            engine.probe_sync(ProbeRequest(
                relation_id="orders", probe=workload.s, **kwargs))
        assert engine.admission.inflight == 0
        assert engine.admission.queued == 0
        return excinfo.value

    doom = FaultPlan((FaultSpec(kind="capacity-overflow", point="capacity",
                                repeat=9),))
    assert isinstance(attempt(faults=doom), UnrecoveredFaultError)
    # The failed build opened the circuit (threshold 1): shed path.
    assert isinstance(attempt(), CircuitOpen)
    engine.cache.invalidate("orders")
    slow = FaultPlan((FaultSpec(kind="slow", point="slow", occurrence=1,
                                seconds=60.0),))
    assert isinstance(attempt(faults=slow, deadline_ms=30_000),
                      DeadlineExceeded)
    # And a clean request still gets the slot afterwards.
    outcome = engine.probe_sync(ProbeRequest(relation_id="orders",
                                             probe=workload.s))
    assert outcome.result.output_count > 0
    assert engine.admission.inflight == 0


def test_oversized_probe_is_refused_before_taking_a_slot(workload):
    engine = ServeEngine(admission=AdmissionController(max_morsels=2))
    engine.register("orders", workload.r)
    with pytest.raises(AdmissionError):
        engine.probe_sync(ProbeRequest(relation_id="orders",
                                       probe=workload.s, morsel_tuples=64))
    assert engine.admission.admitted == 0
    assert engine.admission.rejected == 1
    assert engine.failed == 1
