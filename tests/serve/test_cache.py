"""Build-cache semantics: LRU order, invalidation, single flight."""

import asyncio

import pytest

from repro.errors import ConfigError
from repro.serve.cache import BuildCache, CachedBuild


def entry(rid: str, version: int = 1) -> CachedBuild:
    return CachedBuild(table=object(), relation_id=rid, version=version,
                       n_entries=10)


def get(cache: BuildCache, rid: str, version: int = 1):
    return asyncio.run(
        cache.get_or_build((rid, version), lambda: entry(rid, version)))


def test_warm_hit_returns_cached_entry_without_rebuilding():
    cache = BuildCache(max_entries=2)
    first, hit, shared = get(cache, "a")
    again, hit2, _ = get(cache, "a")
    assert (hit, hit2, shared) == (False, True, False)
    assert again is first
    assert cache.info()["builds"] == 1
    assert cache.info()["hits"] == 1


def test_lru_eviction_drops_least_recently_used_first():
    cache = BuildCache(max_entries=2)
    get(cache, "a")
    get(cache, "b")
    get(cache, "a")          # refresh a: b is now the LRU entry
    get(cache, "c")          # evicts b
    assert cache.keys() == (("a", 1), ("c", 1))
    assert cache.peek(("b", 1)) is None
    assert cache.info()["evictions"] == 1
    _, hit, _ = get(cache, "b")   # b must rebuild after eviction
    assert not hit
    assert cache.info()["builds"] == 4


def test_eviction_order_is_recency_not_insertion():
    cache = BuildCache(max_entries=3)
    for rid in ("a", "b", "c"):
        get(cache, rid)
    get(cache, "a")
    get(cache, "b")
    get(cache, "d")          # evicts c (oldest by recency, not insertion)
    assert cache.keys() == (("a", 1), ("b", 1), ("d", 1))


def test_version_bump_invalidation_targets_one_version():
    cache = BuildCache(max_entries=4)
    get(cache, "a", 1)
    get(cache, "a", 2)
    get(cache, "b", 1)
    assert cache.invalidate("a", 1) == 1
    assert cache.peek(("a", 1)) is None
    assert cache.peek(("a", 2)) is not None
    assert cache.peek(("b", 1)) is not None
    assert cache.invalidate("a") == 1   # remaining version, id-wide drop
    assert cache.keys() == (("b", 1),)
    assert cache.info()["invalidations"] == 2
    assert cache.invalidate("missing") == 0


def test_concurrent_cold_requests_build_exactly_once():
    cache = BuildCache(max_entries=2)
    builds = 0

    def builder():
        nonlocal builds
        builds += 1
        return entry("a")

    async def race(n):
        return await asyncio.gather(*[
            cache.get_or_build(("a", 1), builder) for _ in range(n)])

    results = asyncio.run(race(5))
    assert builds == 1
    entries = {id(e) for e, _, _ in results}
    assert len(entries) == 1
    assert [hit for _, hit, _ in results] == [False] * 5
    shared = [s for _, _, s in results]
    assert shared.count(False) == 1 and shared.count(True) == 4
    info = cache.info()
    assert info["builds"] == 1
    assert info["build_waits"] == 4
    assert info["misses"] == 5


def test_failed_build_propagates_to_all_waiters_and_leaves_key_cold():
    cache = BuildCache(max_entries=2)
    attempts = 0

    def failing():
        nonlocal attempts
        attempts += 1
        raise RuntimeError("flaky build")

    async def race():
        results = await asyncio.gather(
            *[cache.get_or_build(("a", 1), failing) for _ in range(3)],
            return_exceptions=True)
        return results

    results = asyncio.run(race())
    assert attempts == 1
    assert all(isinstance(r, RuntimeError) for r in results)
    assert cache.peek(("a", 1)) is None
    # The key retries cleanly after the failure.
    _, hit, shared = get(cache, "a")
    assert (hit, shared) == (False, False)


def test_async_builder_is_awaited():
    cache = BuildCache(max_entries=2)

    async def builder():
        await asyncio.sleep(0)
        return entry("a")

    got, hit, shared = asyncio.run(cache.get_or_build(("a", 1), builder))
    assert got.relation_id == "a"
    assert (hit, shared) == (False, False)


def test_cache_rejects_nonpositive_bound():
    with pytest.raises(ConfigError):
        BuildCache(max_entries=0)
