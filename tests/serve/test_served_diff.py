"""The served-vs-direct differential leg, incl. the parallel backend."""

import pytest

from repro.data.zipf import ZipfWorkload
from repro.exec.backend import use_backend
from repro.serve.diff import served_differential, serve_structural_mismatches
from repro.serve.engine import ProbeRequest, ServeEngine

N = 1024
SEED = 42


def probe_twice(join_input, morsel_tuples=128):
    engine = ServeEngine()
    engine.register("rel", join_input.r)

    def request():
        return ProbeRequest(relation_id="rel", probe=join_input.s,
                            morsel_tuples=morsel_tuples)

    return engine.probe_sync(request()), engine.probe_sync(request())


def test_served_differential_grid_is_clean():
    reports = served_differential(n=N, seed=SEED)
    assert reports, "differential produced no reports"
    failures = [f"{r.algorithm}/{r.dataset}: {r.mismatches}"
                for r in reports if not r.ok]
    assert not failures, "\n".join(failures)
    # One structural report per dataset plus the full algorithm grid.
    structural = [r for r in reports if r.algorithm == "serve-structure"]
    datasets = {r.dataset for r in reports}
    assert len(structural) == len(datasets)
    per_dataset = {r.dataset for r in structural}
    assert per_dataset == datasets


def test_structural_checker_flags_a_forged_warm_build():
    join_input = ZipfWorkload(N, N, 1.0, seed=SEED).generate()
    cold, warm = probe_twice(join_input)
    clean = serve_structural_mismatches(cold.result, warm.result,
                                        cold.chunks, warm.chunks)
    assert clean == []
    # Feeding the cold result in the warm slot must trip the checker.
    forged = serve_structural_mismatches(cold.result, cold.result,
                                         cold.chunks, cold.chunks)
    assert any("build" in issue for issue in forged)
    assert any("cache_hit" in issue for issue in forged)


@pytest.mark.parametrize("theta", [0.0, 1.0])
def test_streamed_chunks_are_deterministic_under_parallel_backend(
        parallel_pool_env, theta):
    join_input = ZipfWorkload(N, N, theta, seed=SEED).generate()
    with use_backend("vector"):
        vec_cold, vec_warm = probe_twice(join_input)
    with use_backend("parallel"):
        par_cold, par_warm = probe_twice(join_input)
        par_again, _ = probe_twice(join_input)

    def strip(chunks):
        return [{k: c[k] for k in ("index", "tuples", "count", "checksum")}
                for c in chunks]

    # Chunk-for-chunk identical across backends, repeats, and cache state.
    assert strip(par_cold.chunks) == strip(vec_cold.chunks)
    assert strip(par_again.chunks) == strip(par_cold.chunks)
    assert strip(par_warm.chunks) == strip(par_cold.chunks)
    assert par_cold.summary.count == vec_cold.summary.count
    assert par_cold.summary.checksum == vec_cold.summary.checksum


def test_served_differential_is_clean_under_parallel_backend(
        parallel_pool_env):
    with use_backend("parallel"):
        reports = served_differential(n=512, seed=SEED,
                                      algorithms=["cbase", "csh"])
    failures = [f"{r.algorithm}/{r.dataset}: {r.mismatches}"
                for r in reports if not r.ok]
    assert not failures, "\n".join(failures)
    assert {r.backends for r in reports
            if r.algorithm != "serve-structure"} == {("parallel", "served")}
