"""Resilience layer: deadlines, cancellation, circuits, drain, health."""

import asyncio
import contextlib

import pytest

from repro.data.zipf import ZipfWorkload
from repro.errors import (
    CircuitOpen,
    ConfigError,
    DeadlineExceeded,
    RequestCancelled,
    UnrecoveredFaultError,
)
from repro.exec.backend import BACKENDS, use_backend
from repro.exec.cancel import (
    CancelToken,
    Deadline,
    cancel_scope,
    checkpoint,
    current_cancel_scope,
)
from repro.faults.plan import FaultPlan, FaultSpec
from repro.serve.cache import BuildCache, CachedBuild
from repro.serve.client import ServeClient
from repro.serve.engine import ProbeRequest, ServeEngine
from repro.serve.server import ServeServer

N = 2048
THETA = 1.0
SEED = 42

BUILD_SPEC = {"generator": "zipf", "n": N, "theta": THETA, "seed": SEED,
              "side": "r"}
PROBE_SPEC = {**BUILD_SPEC, "side": "s"}


@pytest.fixture(scope="module")
def workload():
    return ZipfWorkload(N, N, THETA, seed=SEED).generate()


@pytest.fixture(scope="module")
def big_workload():
    n = 1 << 17
    return ZipfWorkload(n, n, THETA, seed=SEED).generate()


def probe(engine, workload, **kwargs):
    return engine.probe_sync(
        ProbeRequest(relation_id="orders", probe=workload.s, **kwargs))


# ------------------------------------------------------- cancel plumbing

def test_checkpoint_is_a_noop_without_a_scope():
    checkpoint(anywhere="at all")  # must not raise
    assert current_cancel_scope() is None


def test_deadline_rejects_non_positive_budgets():
    for bad in (0, -1, -0.5):
        with pytest.raises(ConfigError):
            Deadline(bad)


def test_deadline_charge_trips_without_wall_time():
    deadline = Deadline(50.0, clock=lambda: 0.0)  # frozen clock
    assert not deadline.expired
    deadline.charge(10.0)  # 10 simulated seconds vs a 50ms budget
    assert deadline.expired
    with cancel_scope(deadline=deadline):
        with pytest.raises(DeadlineExceeded) as excinfo:
            checkpoint(morsel=3)
    assert excinfo.value.context["deadline_ms"] == 50.0
    assert excinfo.value.context["morsel"] == 3


def test_cancellation_wins_over_deadline():
    deadline = Deadline(1.0, clock=lambda: 0.0)
    deadline.charge(99.0)
    token = CancelToken()
    token.cancel("client disconnected")
    token.cancel("second reason loses")
    with cancel_scope(deadline=deadline, token=token):
        assert current_cancel_scope() is not None
        with pytest.raises(RequestCancelled) as excinfo:
            checkpoint()
    assert excinfo.value.context["reason"] == "client disconnected"
    assert current_cancel_scope() is None


# -------------------------------------------------- engine-level deadline

@pytest.mark.parametrize("backend", BACKENDS)
def test_tiny_deadline_against_large_cold_build_is_typed(
        backend, big_workload):
    """deadline_ms=1 against a 131072-tuple cold build: every backend
    must answer with a typed DeadlineExceeded instead of serving."""
    with use_backend(backend):
        engine = ServeEngine()
        engine.register("orders", big_workload.r)
        with pytest.raises(DeadlineExceeded) as excinfo:
            probe(engine, big_workload, deadline_ms=1)
    context = excinfo.value.context
    assert context["deadline_ms"] == 1
    assert context["elapsed_ms"] >= 1
    assert engine.deadline_exceeded == 1
    assert engine.failed == 1
    assert engine.admission.inflight == 0  # slot released


def test_slow_fault_plus_deadline_is_deterministic(workload):
    """A charged 30s morsel delay trips a 20s budget with no sleeping,
    and the error carries exact partial progress."""
    engine = ServeEngine()
    engine.register("orders", workload.r)
    probe(engine, workload)  # warm the cache: no build-time expiry
    plan = FaultPlan((FaultSpec(kind="slow", point="slow", occurrence=2,
                                seconds=30.0),))
    with pytest.raises(DeadlineExceeded) as excinfo:
        probe(engine, workload, morsel_tuples=256, faults=plan,
              deadline_ms=20_000)
    context = excinfo.value.context
    assert context["morsels_completed"] == 1  # died at the charged morsel
    assert context["n_morsels"] == N // 256
    assert context["partial_count"] >= 0
    assert "partial_checksum" in context
    assert engine.deadline_exceeded == 1
    assert engine.admission.inflight == 0


def test_slow_fault_without_deadline_is_harmless(workload):
    engine = ServeEngine()
    engine.register("orders", workload.r)
    clean = probe(engine, workload, morsel_tuples=256)
    plan = FaultPlan((FaultSpec(kind="slow", point="slow", occurrence=3,
                                seconds=7.5),))
    slowed = probe(engine, workload, morsel_tuples=256, faults=plan)
    assert slowed.result.output_count == clean.result.output_count
    assert slowed.result.output_checksum == clean.result.output_checksum
    reports = slowed.result.faults
    assert len(reports) == 1
    assert reports[0].kind == "slow" and reports[0].recovered
    assert reports[0].backoff_seconds == 7.5
    # The delay is priced into the probe schedule, not ignored.
    slow_probe = next(p for p in slowed.result.phases if p.name == "probe")
    clean_probe = next(p for p in clean.result.phases if p.name == "probe")
    assert slow_probe.simulated_seconds >= 7.5
    assert slow_probe.simulated_seconds > clean_probe.simulated_seconds


def test_cancel_token_stops_a_request_with_partial_progress(workload):
    engine = ServeEngine()
    engine.register("orders", workload.r)
    probe(engine, workload)

    async def scenario():
        token = CancelToken()
        emitted = []

        async def emit(chunk):
            emitted.append(chunk)
            if len(emitted) == 2:
                token.cancel("test says stop")

        request = ProbeRequest(relation_id="orders", probe=workload.s,
                               morsel_tuples=256, cancel=token)
        with pytest.raises(RequestCancelled) as excinfo:
            await engine.probe(request, emit=emit)
        return emitted, excinfo.value

    emitted, error = asyncio.run(scenario())
    assert len(emitted) == 2  # cancelled at the next morsel boundary
    assert error.context["reason"] == "test says stop"
    assert error.context["morsels_completed"] == 2
    assert engine.cancelled == 1
    assert engine.admission.inflight == 0


# -------------------------------------------------------- circuit breaker

def _failing_builder():
    raise RuntimeError("cold build exploded")


def _entry(key=("orders", 1), n=4):
    return CachedBuild(table=object(), relation_id=key[0], version=key[1],
                       n_entries=n)


def test_circuit_opens_after_threshold_and_half_opens_on_decay():
    now = {"t": 0.0}
    cache = BuildCache(circuit_threshold=3, circuit_reset_seconds=30.0,
                       clock=lambda: now["t"])
    key = ("orders", 1)

    async def scenario():
        for _ in range(3):
            with pytest.raises(RuntimeError):
                await cache.get_or_build(key, _failing_builder)
        # Open: the next request sheds fast with a typed error.
        with pytest.raises(CircuitOpen) as excinfo:
            await cache.get_or_build(key, _failing_builder)
        assert excinfo.value.context["failures"] == 3
        assert excinfo.value.context["retry_in_seconds"] == 30.0
        assert cache.circuit_shed == 1
        assert cache.circuits()["orders@1"]["state"] == "open"

        # Decay window passes: exactly one half-open trial runs.
        now["t"] = 31.0
        with pytest.raises(RuntimeError):
            await cache.get_or_build(key, _failing_builder)
        # The failed trial re-opened the circuit.
        with pytest.raises(CircuitOpen):
            await cache.get_or_build(key, _failing_builder)

        # Next decay: a successful trial closes it for good.
        now["t"] = 62.0
        entry, hit, shared = await cache.get_or_build(key, _entry)
        assert not hit and not shared
        assert cache.open_circuits() == 0
        assert cache.circuits() == {}

    asyncio.run(scenario())
    assert cache.circuit_opens == 2
    assert cache.circuit_closes == 1


def test_deadline_failures_do_not_open_the_circuit():
    cache = BuildCache(circuit_threshold=1)
    key = ("orders", 1)

    def doomed_budget():
        raise DeadlineExceeded("deadline exceeded", deadline_ms=1)

    async def scenario():
        for _ in range(5):
            with pytest.raises(DeadlineExceeded):
                await cache.get_or_build(key, doomed_budget)
        assert cache.open_circuits() == 0
        entry, hit, shared = await cache.get_or_build(key, _entry)
        assert not hit

    asyncio.run(scenario())


def test_invalidate_clears_circuit_state():
    cache = BuildCache(circuit_threshold=1)
    key = ("orders", 1)

    async def scenario():
        with pytest.raises(RuntimeError):
            await cache.get_or_build(key, _failing_builder)
        assert cache.open_circuits() == 1
        cache.invalidate("orders")
        assert cache.open_circuits() == 0
        entry, hit, _ = await cache.get_or_build(key, _entry)
        assert not hit

    asyncio.run(scenario())


def test_waiters_survive_a_leader_that_hits_its_own_deadline():
    """Single-flight waiters whose leader abandoned the build must retry
    (one becomes the new leader) instead of being stranded."""
    cache = BuildCache()
    key = ("orders", 1)

    async def scenario():
        release = asyncio.Event()

        async def doomed_leader():
            await release.wait()
            raise DeadlineExceeded("deadline exceeded", deadline_ms=1)

        async def healthy_builder():
            return _entry()

        leader = asyncio.ensure_future(
            cache.get_or_build(key, doomed_leader))
        await asyncio.sleep(0)  # leader installs the in-flight future
        waiter = asyncio.ensure_future(
            cache.get_or_build(key, healthy_builder))
        await asyncio.sleep(0)
        release.set()
        with pytest.raises(DeadlineExceeded):
            await leader
        entry, hit, shared = await waiter
        assert entry.n_entries == 4

    asyncio.run(scenario())
    assert cache.builds == 1
    assert cache.open_circuits() == 0
    assert len(cache) == 1


def test_engine_classifies_circuit_shed_requests(workload):
    engine = ServeEngine(circuit_threshold=1,
                         circuit_reset_seconds=3600.0)
    engine.register("orders", workload.r)
    doom = FaultPlan((FaultSpec(kind="capacity-overflow", point="capacity",
                                repeat=9),))
    with pytest.raises(UnrecoveredFaultError):
        probe(engine, workload, faults=doom)
    with pytest.raises(CircuitOpen) as excinfo:
        probe(engine, workload)
    assert excinfo.value.context["relation_id"] == "orders"
    assert engine.circuit_shed == 1
    assert engine.cache.circuit_shed == 1
    assert engine.admission.inflight == 0
    # A probe of an unaffected relation is not shed.
    engine.register("other", workload.r)
    outcome = engine.probe_sync(
        ProbeRequest(relation_id="other", probe=workload.s))
    assert outcome.result.output_count > 0


# --------------------------------------------------- server drain + wire

@contextlib.asynccontextmanager
async def serving(**kwargs):
    server = ServeServer(**kwargs)
    await server.start()
    loop_task = asyncio.ensure_future(server.serve_until_shutdown())
    try:
        yield server
    finally:
        await server.close()
        with contextlib.suppress(Exception):
            await loop_task


@contextlib.asynccontextmanager
async def connected(server):
    client = ServeClient(port=server.port)
    await client.connect()
    try:
        yield client
    finally:
        await client.close()


def test_deadline_over_the_wire_is_a_typed_error():
    async def scenario():
        async with serving() as server, connected(server) as client:
            await client.register("orders", BUILD_SPEC)
            warm = await client.probe("orders", PROBE_SPEC)
            assert warm.ok
            reply = await client.probe(
                "orders", PROBE_SPEC, morsel_tuples=64,
                deadline_ms=0.000001)
            assert (reply.error or {}).get("kind") == "DeadlineExceeded"
            assert reply.error["context"]["deadline_ms"] == 0.000001
            # The connection survives; the failure is accounted.
            assert (await client.ping()).get("type") == "pong"
            stats = await client.stats()
            assert stats["deadline_exceeded"] == 1

    asyncio.run(scenario())


def test_invalid_deadline_is_a_protocol_error():
    async def scenario():
        async with serving() as server, connected(server) as client:
            await client.register("orders", BUILD_SPEC)
            for bad in (0, -5, "soon"):
                reply = await client.probe("orders", PROBE_SPEC,
                                           deadline_ms=bad)
                assert (reply.error or {}).get("kind") == "ProtocolError"
            assert (await client.ping()).get("type") == "pong"

    asyncio.run(scenario())


def test_health_verb_reports_liveness_and_circuits():
    async def scenario():
        async with serving() as server, connected(server) as client:
            await client.register("orders", BUILD_SPEC)
            await client.probe("orders", PROBE_SPEC)
            health = await client.health()
            metrics = health["metrics"]
            assert health["ok"] is True
            assert metrics["serve.health.cache_entries"] == 1
            assert metrics["serve.health.open_circuits"] == 0
            assert metrics["serve.health.inflight"] == 0
            assert metrics["serve.health.completed"] == 1
            assert metrics["serve.health.deadline_exceeded"] == 0
            assert health["circuits"] == {}
            assert health["draining"] is False
            assert health["disconnects"] == 0
            assert "workers" in health

    asyncio.run(scenario())


def test_health_goes_unhealthy_while_a_circuit_is_open():
    async def scenario():
        engine = ServeEngine(circuit_threshold=1,
                             circuit_reset_seconds=3600.0)
        async with serving(engine=engine) as server:
            async with connected(server) as client:
                await client.register("orders", BUILD_SPEC)
                doomed = await client.probe(
                    "orders", PROBE_SPEC,
                    faults=[{"kind": "capacity-overflow",
                             "point": "capacity", "repeat": 9}])
                assert (doomed.error or {}).get("kind") == \
                    "UnrecoveredFaultError"
                shed = await client.probe("orders", PROBE_SPEC)
                assert (shed.error or {}).get("kind") == "CircuitOpen"
                assert shed.error["context"]["retry_in_seconds"] > 0
                health = await client.health()
                assert health["ok"] is False
                assert health["metrics"]["serve.health.open_circuits"] == 1
                assert health["circuits"]["orders@1"]["state"] == "open"

    asyncio.run(scenario())


def test_draining_server_refuses_new_probes_typed():
    async def scenario():
        async with serving() as server, connected(server) as client:
            await client.register("orders", BUILD_SPEC)
            server.draining = True
            refused = await client.probe("orders", PROBE_SPEC)
            assert (refused.error or {}).get("kind") == "ServeError"
            assert "draining" in refused.error["message"]
            assert refused.error["context"]["draining"] is True
            assert server.drain_refusals == 1
            health = await client.health()
            assert health["draining"] is True
            server.draining = False
            again = await client.probe("orders", PROBE_SPEC)
            assert again.ok

    asyncio.run(scenario())


def test_drain_cancels_stragglers_with_typed_errors():
    """Shutdown with a wedged in-flight probe: after drain_seconds its
    cancel token fires and the client still gets a typed error line."""
    async def scenario():
        async with serving(drain_seconds=0.05) as server:
            async with connected(server) as client:
                await client.register("orders", BUILD_SPEC)

                async def wedged_probe(request, emit=None):
                    # Cooperative stand-in for a long request: honors the
                    # cancel token, never finishes on its own.
                    for _ in range(2000):
                        if request.cancel is not None \
                                and request.cancel.cancelled:
                            raise RequestCancelled(
                                "request cancelled: "
                                f"{request.cancel.reason}",
                                reason=request.cancel.reason)
                        await asyncio.sleep(0.005)
                    raise AssertionError("drain never cancelled us")

                server.engine.probe = wedged_probe
                victim = asyncio.ensure_future(
                    client.probe("orders", PROBE_SPEC,
                                 trace_id="drain-victim"))
                while not server._cancel_tokens:
                    await asyncio.sleep(0.005)
                server.shutdown()
                reply = await victim
                return reply, server

    reply, server = asyncio.run(scenario())
    assert (reply.error or {}).get("kind") == "RequestCancelled"
    assert reply.error["context"]["reason"] == "server drain"
    assert server.force_cancelled == 0


def test_midstream_disconnect_releases_the_slot_and_daemon_survives():
    """Regression: a client that vanishes after the first chunk must not
    leak its admission slot or take the daemon down."""
    from repro.serve.protocol import encode_message

    async def scenario():
        async with serving() as server:
            async with connected(server) as client:
                await client.register("orders", BUILD_SPEC)
            reader, writer = await asyncio.open_connection(
                server.host, server.port)
            writer.write(encode_message({
                "op": "probe", "request_id": "gone",
                "relation_id": "orders", "probe": PROBE_SPEC,
                "morsel_tuples": 64}))
            await writer.drain()
            first = await asyncio.wait_for(reader.readline(), timeout=30)
            assert b'"chunk"' in first
            writer.transport.abort()
            for _ in range(200):
                if (server.disconnects
                        and server.engine.admission.inflight == 0):
                    break
                await asyncio.sleep(0.05)
            assert server.disconnects == 1
            assert server.engine.admission.inflight == 0
            # The daemon is still fully alive for other clients.
            async with connected(server) as client:
                assert (await client.ping()).get("type") == "pong"
                reply = await client.probe("orders", PROBE_SPEC)
                assert reply.ok and reply.cache_hit
                health = await client.health()
                assert health["disconnects"] == 1
                assert health["ok"] is True

    asyncio.run(scenario())
