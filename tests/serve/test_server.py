"""Daemon over a real loopback socket: protocol, concurrency, artifact."""

import asyncio
import contextlib
import json

from repro.api import make_join
from repro.data.zipf import ZipfWorkload
from repro.exec.serialize import results_from_jsonl_file
from repro.serve.client import ServeClient
from repro.serve.protocol import PROTOCOL_VERSION, encode_message
from repro.serve.server import ServeServer

N = 1024
THETA = 1.0
SEED = 42

BUILD_SPEC = {"generator": "zipf", "n": N, "theta": THETA, "seed": SEED,
              "side": "r"}
PROBE_SPEC = {**BUILD_SPEC, "side": "s"}


@contextlib.asynccontextmanager
async def serving(**kwargs):
    server = ServeServer(**kwargs)
    await server.start()
    loop_task = asyncio.ensure_future(server.serve_until_shutdown())
    try:
        yield server
    finally:
        await server.close()
        with contextlib.suppress(Exception):
            await loop_task


@contextlib.asynccontextmanager
async def connected(server):
    client = ServeClient(port=server.port)
    await client.connect()
    try:
        yield client
    finally:
        await client.close()


def test_register_and_probe_round_trip_matches_direct_run():
    workload = ZipfWorkload(N, N, THETA, seed=SEED).generate()
    direct = make_join("cbase").run(workload)

    async def scenario():
        async with serving() as server, connected(server) as client:
            registered = await client.register("orders", BUILD_SPEC)
            assert registered["type"] == "registered"
            assert registered["version"] == 1
            assert registered["n_entries"] == N
            reply = await client.probe("orders", PROBE_SPEC,
                                       morsel_tuples=256)
            assert reply.ok
            assert not reply.cache_hit
            assert reply.chunks, "probe streamed no chunks"
            return reply

    reply = asyncio.run(scenario())
    assert reply.summary["count"] == direct.output_count
    assert reply.summary["checksum"] == direct.output_checksum
    assert reply.result["output_count"] == direct.output_count
    assert reply.result["output_checksum"] == direct.output_checksum


def test_concurrent_clients_share_one_single_flight_build():
    async def scenario():
        async with serving() as server:
            async with connected(server) as one, connected(server) as two:
                await one.register("orders", BUILD_SPEC)
                a, b = await asyncio.gather(
                    one.probe("orders", PROBE_SPEC, morsel_tuples=128),
                    two.probe("orders", PROBE_SPEC, morsel_tuples=128))
                stats = await one.stats()
            return a, b, stats

    a, b, stats = asyncio.run(scenario())
    assert a.ok and b.ok
    assert a.summary == b.summary
    assert stats["cache"]["builds"] == 1
    assert stats["completed"] == 2


def test_interleaved_probes_on_one_connection_stay_separated():
    async def scenario():
        async with serving() as server, connected(server) as client:
            await client.register("orders", BUILD_SPEC)
            replies = await asyncio.gather(*[
                client.probe("orders", PROBE_SPEC, morsel_tuples=128,
                             trace_id=f"t{i}")
                for i in range(3)])
            return replies

    replies = asyncio.run(scenario())
    assert all(r.ok for r in replies)
    # Each reply's chunks carry only its own trace id, in morsel order.
    for i, reply in enumerate(replies):
        assert {c["trace_id"] for c in reply.chunks} == {f"t{i}"}
        assert [c["index"] for c in reply.chunks] == \
            list(range(len(reply.chunks)))
    assert len({json.dumps(r.summary) for r in replies}) == 1


def test_malformed_lines_get_typed_errors_and_spare_the_connection():
    async def scenario():
        async with serving() as server:
            reader, writer = await asyncio.open_connection(
                server.host, server.port)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                garbled = json.loads(await reader.readline())
                writer.write(encode_message({"op": "no-such-op",
                                             "request_id": "x1"}))
                await writer.drain()
                unknown = json.loads(await reader.readline())
                writer.write(encode_message({
                    "op": "ping", "request_id": "x2",
                    "protocol_version": PROTOCOL_VERSION + 1}))
                await writer.drain()
                mismatched = json.loads(await reader.readline())
                writer.write(encode_message({"op": "ping",
                                             "request_id": "x3"}))
                await writer.drain()
                pong = json.loads(await reader.readline())
            finally:
                writer.close()
                await writer.wait_closed()
            return garbled, unknown, mismatched, pong

    garbled, unknown, mismatched, pong = asyncio.run(scenario())
    assert garbled["type"] == "error"
    assert garbled["error"]["kind"] == "ProtocolError"
    assert unknown["type"] == "error"
    assert unknown["error"]["context"]["op"] == "no-such-op"
    assert unknown["request_id"] == "x1"
    assert mismatched["type"] == "error"
    assert mismatched["error"]["context"]["expected_version"] == \
        PROTOCOL_VERSION
    # The connection survived all three bad requests.
    assert pong == {"type": "pong", "request_id": "x3"}


def test_probe_failures_come_back_as_typed_error_lines():
    async def scenario():
        async with serving() as server, connected(server) as client:
            unknown = await client.probe("nobody", PROBE_SPEC)
            await client.register("orders", BUILD_SPEC)
            doomed = await client.probe(
                "orders", PROBE_SPEC,
                faults=[{"kind": "worker-crash", "point": "task",
                         "repeat": 9}])
            recovered = await client.probe(
                "orders", PROBE_SPEC,
                faults=[{"kind": "worker-crash", "point": "task"}])
            clean = await client.probe("orders", PROBE_SPEC)
            return unknown, doomed, recovered, clean

    unknown, doomed, recovered, clean = asyncio.run(scenario())
    assert unknown.error["kind"] == "ServeError"
    assert "register" in unknown.error["message"]
    assert doomed.error["kind"] == "UnrecoveredFaultError"
    assert doomed.error["report"]["recovered"] is False
    assert recovered.ok and clean.ok
    assert recovered.summary == clean.summary
    assert len(recovered.result["faults"]) == 1


def test_invalidate_and_shutdown_round_trip():
    async def scenario():
        async with serving() as server, connected(server) as client:
            await client.register("orders", BUILD_SPEC)
            await client.probe("orders", PROBE_SPEC)
            dropped = await client.invalidate("orders")
            gone = await client.probe("orders", PROBE_SPEC)
            again = await client.register("orders", BUILD_SPEC)
            rebuilt = await client.probe("orders", PROBE_SPEC)
            bye = await client.shutdown()
            return dropped, gone, again, rebuilt, bye

    dropped, gone, again, rebuilt, bye = asyncio.run(scenario())
    assert dropped["type"] == "invalidated"
    assert dropped["dropped"] == 1
    # Invalidation deregisters the relation outright, cache included.
    assert gone.error["kind"] == "ServeError"
    assert again["version"] == 1
    assert rebuilt.ok and not rebuilt.cache_hit
    assert bye["type"] == "bye"


def test_trace_artifact_round_trips_served_results(tmp_path):
    trace_path = tmp_path / "serve-trace.jsonl"

    async def scenario():
        async with serving(trace_path=trace_path) as server:
            async with connected(server) as client:
                await client.register("orders", BUILD_SPEC)
                cold = await client.probe("orders", PROBE_SPEC)
                warm = await client.probe("orders", PROBE_SPEC)
            return server.traced_results, cold, warm

    traced, cold, warm = asyncio.run(scenario())
    assert traced == 2
    results = results_from_jsonl_file(trace_path)
    assert len(results) == 2
    for result, reply in zip(results, (cold, warm)):
        assert result.meta["served"] is True
        assert result.output_count == reply.summary["count"]
        assert result.trace is not None
    assert results[0].meta["cache_hit"] is False
    assert results[1].meta["cache_hit"] is True
