"""Cross-algorithm agreement: all five pipelines, one truth.

The strongest correctness property in the library: on any input, Cbase,
cbase-npj, CSH, Gbase, and GSH must produce the same output count and the
same order-independent checksum, and both must equal the histogram-derived
ground truth.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import run_all
from repro.data.generators import (
    constant_key_input,
    input_from_frequencies,
    sequential_input,
    uniform_input,
)
from repro.data.graph import power_law_graph, two_hop_join_input
from repro.data.zipf import ZipfWorkload
from repro.exec.result import compare_results
from tests.conftest import expected_summary


def check_all(ji):
    results = run_all(ji)
    assert compare_results(list(results.values())) is None
    count, checksum = expected_summary(ji)
    any_result = next(iter(results.values()))
    assert any_result.output_count == count
    assert any_result.output_checksum == checksum


def test_all_agree_on_uniform():
    check_all(uniform_input(6000, 6000, n_keys=2000, seed=1))


def test_all_agree_on_heavy_zipf():
    check_all(ZipfWorkload(10000, 10000, theta=1.0, seed=2).generate())


def test_all_agree_on_single_key():
    check_all(constant_key_input(3000, 2000, seed=3))


def test_all_agree_on_pk_fk():
    check_all(sequential_input(4096, seed=4))


def test_all_agree_on_disjoint():
    check_all(input_from_frequencies([1] * 50 + [0] * 50,
                                     [0] * 50 + [1] * 50, seed=5))


def test_all_agree_on_asymmetric_sizes():
    check_all(ZipfWorkload(20000, 500, theta=0.8, seed=6).generate())
    check_all(ZipfWorkload(500, 20000, theta=0.8, seed=7).generate())


def test_all_agree_on_graph_two_hop():
    g = power_law_graph(2000, 15000, exponent=2.0, seed=8)
    check_all(two_hop_join_input(g))


freq_strategy = st.lists(st.integers(0, 60), min_size=1, max_size=40)


@given(freq_strategy, freq_strategy, st.integers(0, 2**31))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_all_agree_property(r_freqs, s_freqs, seed):
    n = min(len(r_freqs), len(s_freqs))
    ji = input_from_frequencies(r_freqs[:n], s_freqs[:n], seed=seed)
    if len(ji.r) == 0 or len(ji.s) == 0:
        return
    check_all(ji)
