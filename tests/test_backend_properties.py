"""Hypothesis property tests: backend equivalence under arbitrary inputs.

The differential matrix pins the backends together on a fixed grid; these
properties let hypothesis hunt for divergence in the corners — Zipf skew,
duplicates-only keys, empty relations, capacity-stressing cartesian
blowups, and runs with injected faults.

``REPRO_HYPOTHESIS_PROFILE=nightly`` (set by the nightly workflow) deepens
the search; the default profile keeps PR runs fast.
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import ALGORITHMS, make_join
from repro.cpu.chained_table import ChainedHashTable
from repro.data.relation import JoinInput, Relation
from repro.data.zipf import ZipfWorkload
from repro.errors import ReproError
from repro.exec.backend import PARALLEL, SCALAR, VECTOR, use_backend
from repro.exec.counters import OpCounters
from repro.exec.differential import compare_results
from repro.exec.output import JoinOutputBuffer
from repro.faults.plan import seeded_plan
from repro.faults.scope import activate_plan

_NIGHTLY = os.environ.get("REPRO_HYPOTHESIS_PROFILE", "") == "nightly"

_SETTINGS = settings(
    max_examples=40 if _NIGHTLY else 8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_ALGORITHMS = sorted(ALGORITHMS)


def _relation(draw, n, key_pool, name):
    keys = draw(st.lists(st.sampled_from(key_pool), min_size=n, max_size=n))
    return Relation(np.asarray(keys, dtype=np.uint32),
                    np.arange(n, dtype=np.uint32), name=name)


@st.composite
def join_inputs(draw):
    """Small inputs biased toward the nasty shapes.

    Key pools shrink to as little as one key (duplicates-only cartesian
    blowup — the capacity stressor) and either side may be empty.
    """
    pool_size = draw(st.sampled_from([1, 2, 7, 64]))
    key_pool = list(range(pool_size))
    n_r = draw(st.integers(min_value=0, max_value=96))
    n_s = draw(st.integers(min_value=0, max_value=96))
    return JoinInput(
        r=_relation(draw, n_r, key_pool, "R"),
        s=_relation(draw, n_s, key_pool, "S"),
        meta={"generator": "hypothesis"},
    )


_BACKENDS = (SCALAR, VECTOR, PARALLEL)


def _run_all(algorithm, join_input, plan_seed=None, backends=_BACKENDS):
    """Run one algorithm per backend; faults (if any) re-injected per run."""
    results = {}
    for backend in backends:
        with use_backend(backend):
            if plan_seed is None:
                results[backend] = make_join(algorithm).run(join_input)
            else:
                plan = seeded_plan(plan_seed, algorithms=[algorithm])
                with activate_plan(plan):
                    try:
                        results[backend] = make_join(algorithm).run(join_input)
                    except ReproError as exc:
                        results[backend] = (type(exc).__name__, str(exc))
    return results


def _assert_all_agree(results):
    """Every backend's result must match the first one's — same output,
    counters and phases, or the same typed error."""
    reference_backend, *others = results
    reference = results[reference_backend]
    for backend in others:
        other = results[backend]
        if isinstance(reference, tuple) or isinstance(other, tuple):
            assert isinstance(reference, tuple) and isinstance(other, tuple), (
                f"{reference_backend} vs {backend}: "
                f"{reference!r} != {other!r}")
            assert reference[0] == other[0], (
                f"{reference_backend} vs {backend}: "
                f"{reference[0]} != {other[0]}")
        else:
            issues = compare_results(reference, other)
            assert issues == [], f"{reference_backend} vs {backend}: {issues}"


@pytest.mark.parametrize("algorithm", _ALGORITHMS)
@given(join_input=join_inputs())
@_SETTINGS
def test_backends_agree_on_arbitrary_inputs(algorithm, join_input):
    _assert_all_agree(_run_all(algorithm, join_input))


@pytest.mark.parametrize("algorithm", _ALGORITHMS)
@given(theta=st.sampled_from([0.0, 0.5, 0.9, 1.0, 1.2]),
       seed=st.integers(min_value=0, max_value=2**16))
@_SETTINGS
def test_backends_agree_under_zipf_skew(algorithm, theta, seed):
    join_input = ZipfWorkload(256, 256, theta=theta, seed=seed).generate()
    _assert_all_agree(_run_all(algorithm, join_input))


@pytest.mark.parametrize("algorithm", _ALGORITHMS)
@given(plan_seed=st.integers(min_value=0, max_value=2**16),
       seed=st.integers(min_value=0, max_value=2**8))
@_SETTINGS
def test_backends_agree_under_injected_faults(algorithm, plan_seed, seed):
    """Same seeded fault plan per backend: same recovery, same output —
    or the same typed error."""
    join_input = ZipfWorkload(192, 192, theta=1.0, seed=seed).generate()
    _assert_all_agree(_run_all(algorithm, join_input, plan_seed=plan_seed))


@pytest.mark.parametrize("algorithm", _ALGORITHMS)
def test_parallel_pool_agrees_under_faults(algorithm, parallel_pool_env):
    """Fault equivalence with the morsel pool actually engaged.

    Fault injection fires driver-side only, so a real two-worker pool
    (pinned by the fixture, threshold zeroed) must recover identically to
    the vector backend — same retries, same counters, same output — or
    fail with the same typed error.
    """
    join_input = ZipfWorkload(2048, 2048, theta=1.0, seed=13).generate()
    for plan_seed in (5, 23, 71):
        results = _run_all(algorithm, join_input, plan_seed=plan_seed,
                           backends=(VECTOR, PARALLEL))
        _assert_all_agree(results)


@given(
    r_keys=st.lists(st.integers(min_value=0, max_value=5), min_size=0,
                    max_size=64),
    s_keys=st.lists(st.integers(min_value=0, max_value=5), min_size=0,
                    max_size=64),
)
@_SETTINGS
def test_chained_table_probe_counters_match(r_keys, s_keys):
    """The chained-table build+probe pair reports identical counters and
    summaries under both backends, duplicates and all."""
    outcomes = {}
    for backend in _BACKENDS:
        with use_backend(backend):
            table = ChainedHashTable(16)
            counters = OpCounters()
            table.build(np.asarray(r_keys, dtype=np.uint32),
                        np.arange(len(r_keys), dtype=np.uint32),
                        counters=counters)
            buf = JoinOutputBuffer(128)
            summary = table.probe(
                np.asarray(s_keys, dtype=np.uint32),
                np.arange(len(s_keys), dtype=np.uint32),
                buf, counters=counters)
            outcomes[backend] = (counters.as_dict(), summary.count,
                                 summary.checksum, buf.count, buf.checksum)
    assert outcomes[SCALAR] == outcomes[VECTOR] == outcomes[PARALLEL]
