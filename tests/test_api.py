"""Tests for the top-level convenience API."""

import pytest

from repro import (
    ALGORITHMS,
    CbaseConfig,
    CSHConfig,
    JoinInput,
    ZipfWorkload,
    join,
    make_join,
    run_all,
)
from repro.data.generators import uniform_input
from repro.errors import ConfigError
from tests.conftest import assert_result_correct


def test_registry_has_all_five():
    assert set(ALGORITHMS) == {"cbase", "cbase-npj", "csh", "gbase", "gsh"}


def test_make_join_unknown_name():
    with pytest.raises(ConfigError):
        make_join("nope")


def test_make_join_wrong_config_type():
    with pytest.raises(ConfigError):
        make_join("csh", CbaseConfig())


def test_make_join_with_config():
    j = make_join("csh", CSHConfig(sample_rate=0.05))
    assert j.config.sample_rate == 0.05


def test_join_with_two_relations():
    ji = uniform_input(1000, 1000, seed=1)
    res = join(ji.r, ji.s, algorithm="cbase")
    assert_result_correct(res, ji)


def test_join_with_join_input():
    ji = uniform_input(1000, 1000, seed=2)
    res = join(ji, algorithm="gsh")
    assert_result_correct(res, ji)


def test_join_input_plus_relation_rejected():
    ji = uniform_input(10, 10, seed=0)
    with pytest.raises(ConfigError):
        join(ji, ji.s)


def test_join_missing_second_relation():
    ji = uniform_input(10, 10, seed=0)
    with pytest.raises(ConfigError):
        join(ji.r)


def test_run_all_agree():
    ji = ZipfWorkload(5000, 5000, theta=0.9, seed=3).generate()
    results = run_all(ji)
    assert set(results) == set(ALGORITHMS)
    counts = {r.output_count for r in results.values()}
    checksums = {r.output_checksum for r in results.values()}
    assert len(counts) == 1 and len(checksums) == 1
    assert_result_correct(results["csh"], ji)
