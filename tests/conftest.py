"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import uniform_input
from repro.data.histogram import (
    KeyHistogram,
    join_output_checksum,
    join_output_count,
)
from repro.data.relation import JoinInput, Relation
from repro.data.zipf import ZipfWorkload


def expected_summary(join_input: JoinInput):
    """Ground-truth (count, checksum) for a materialized join input."""
    hr = KeyHistogram.from_relation(join_input.r)
    hs = KeyHistogram.from_relation(join_input.s)
    return (
        join_output_count(hr, hs),
        join_output_checksum(join_input.r, join_input.s),
    )


def brute_force_count(join_input: JoinInput) -> int:
    """O(n*m)-ish dict-based join count for tiny inputs."""
    from collections import Counter

    r_counts = Counter(join_input.r.keys.tolist())
    return sum(r_counts.get(k, 0) for k in join_input.s.keys.tolist())


def assert_result_correct(result, join_input: JoinInput):
    count, checksum = expected_summary(join_input)
    assert result.output_count == count, (
        f"{result.algorithm}: count {result.output_count} != {count}"
    )
    assert result.output_checksum == checksum, (
        f"{result.algorithm}: checksum mismatch"
    )


@pytest.fixture
def parallel_pool_env(monkeypatch):
    """Pin a deterministic two-worker pool and force morsel engagement.

    CI pins ``REPRO_WORKERS`` the same way, so pool-path tests exercise a
    real process pool regardless of the host's core count; the engagement
    threshold drops to zero so the small test inputs reach the kernels.
    The process-wide pool is torn down afterwards so other tests see the
    ambient environment again.
    """
    from repro.exec import parallel

    monkeypatch.setenv(parallel.WORKERS_ENV, "2")
    monkeypatch.setenv(parallel.MIN_TUPLES_ENV, "0")
    yield
    parallel.shutdown_pool()


@pytest.fixture
def small_uniform() -> JoinInput:
    return uniform_input(4000, 4000, n_keys=1000, seed=11)


@pytest.fixture
def small_skewed() -> JoinInput:
    return ZipfWorkload(8000, 8000, theta=1.0, seed=5).generate()


@pytest.fixture
def tiny_input() -> JoinInput:
    r = Relation(np.array([1, 2, 2, 3], dtype=np.uint32),
                 np.array([10, 20, 21, 30], dtype=np.uint32), name="R")
    s = Relation(np.array([2, 3, 3, 4], dtype=np.uint32),
                 np.array([200, 300, 301, 400], dtype=np.uint32), name="S")
    return JoinInput(r=r, s=s)
