"""Tests for the volcano query layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.generators import input_from_frequencies, uniform_input
from repro.data.relation import Relation
from repro.errors import ConfigError
from repro.query import (
    Batch,
    Filter,
    GroupByAggregate,
    HashJoin,
    Limit,
    Materialize,
    Project,
    ScalarAggregate,
    TableScan,
    TopK,
)


def scan(columns, batch_size=7):
    return TableScan(columns, batch_size=batch_size)


class TestBatch:
    def test_basic(self):
        b = Batch({"a": np.arange(3), "b": np.arange(3) * 10})
        assert len(b) == 3
        assert b.schema == ["a", "b"]
        assert b.column("b").tolist() == [0, 10, 20]

    def test_ragged_rejected(self):
        with pytest.raises(ConfigError):
            Batch({"a": np.arange(3), "b": np.arange(4)})

    def test_missing_column(self):
        with pytest.raises(ConfigError):
            Batch({"a": np.arange(2)}).column("z")

    def test_filter_select_rename(self):
        b = Batch({"a": np.arange(4), "b": np.arange(4) * 2})
        f = b.filter(np.array([True, False, True, False]))
        assert f.column("a").tolist() == [0, 2]
        s = b.select(["b"])
        assert s.schema == ["b"]
        r = b.rename({"a": "x"})
        assert r.schema == ["x", "b"]

    def test_concat_schema_check(self):
        a = Batch({"x": np.arange(2)})
        c = Batch({"y": np.arange(2)})
        with pytest.raises(ConfigError):
            Batch.concat([a, c])
        combined = Batch.concat([a, Batch({"x": np.arange(3)})])
        assert len(combined) == 5


class TestScanFilterProject:
    def test_scan_batches(self):
        op = scan({"k": np.arange(20)}, batch_size=6)
        sizes = [len(b) for b in op]
        assert sizes == [6, 6, 6, 2]
        assert len(op.collect()) == 20

    def test_scan_from_relation(self):
        rel = Relation.from_keys(np.arange(10, dtype=np.uint32), seed=0)
        op = TableScan.from_relation(rel, batch_size=4)
        assert op.schema() == ["key", "payload"]
        assert len(op.collect()) == 10

    def test_filter(self):
        op = Filter(scan({"k": np.arange(20)}),
                    lambda b: b.column("k") % 2 == 0)
        assert op.collect().column("k").tolist() == list(range(0, 20, 2))

    def test_project_rename_and_compute(self):
        op = Project(scan({"k": np.arange(5)}),
                     {"key": "k", "double": lambda b: b.column("k") * 2})
        out = op.collect()
        assert out.schema == ["key", "double"]
        assert out.column("double").tolist() == [0, 2, 4, 6, 8]

    def test_limit(self):
        op = Limit(scan({"k": np.arange(100)}, batch_size=7), 10)
        assert len(op.collect()) == 10
        assert len(Limit(scan({"k": np.arange(5)}), 100).collect()) == 5
        with pytest.raises(ConfigError):
            Limit(scan({"k": np.arange(5)}), -1)

    def test_materialize_buffers_once(self):
        op = Materialize(scan({"k": np.arange(9)}, batch_size=2))
        first = op.collect()
        second = op.collect()
        assert np.array_equal(first.column("k"), second.column("k"))


class TestHashJoin:
    def join_counts(self, r_freqs, s_freqs, **kwargs):
        ji = input_from_frequencies(r_freqs, s_freqs, seed=1)
        left = TableScan.from_relation(ji.s, "key", "s_pay", batch_size=13)
        right = TableScan.from_relation(ji.r, "key", "r_pay")
        join = HashJoin(left, right, "key", "key", **kwargs)
        return join.collect()

    def test_inner_join_count(self):
        out = self.join_counts([2, 3, 0], [4, 1, 5])
        assert len(out) == 2 * 4 + 3 * 1

    def test_schema_disambiguation(self):
        out = self.join_counts([1], [1])
        assert out.schema == ["key", "s_pay", "build_key", "r_pay"]
        assert np.array_equal(out.column("key"), out.column("build_key"))

    def test_matches_ground_truth_counts(self):
        ji = uniform_input(3000, 3000, n_keys=500, seed=2)
        left = TableScan.from_relation(ji.s, "key", "s_pay", batch_size=256)
        right = TableScan.from_relation(ji.r, "key", "r_pay")
        out = HashJoin(left, right, "key", "key").collect()
        from tests.conftest import expected_summary
        count, checksum = expected_summary(ji)
        assert len(out) == count
        prods = (out.column("r_pay").astype(np.uint64)
                 * out.column("s_pay").astype(np.uint64))
        assert int(np.sum(prods, dtype=np.uint64)) == checksum

    @pytest.mark.slow
    def test_skew_aware_same_result(self):
        plain = self.join_counts([5000, 1, 1], [5000, 1, 1])
        aware = self.join_counts([5000, 1, 1], [5000, 1, 1],
                                 skew_aware=True, sample_rate=0.05)
        assert len(plain) == len(aware) == 5000 * 5000 + 2
        assert (sorted(plain.column("r_pay").tolist())
                == sorted(aware.column("r_pay").tolist()))

    def test_output_batches_bounded(self):
        ji = input_from_frequencies([1000], [1000], seed=3)
        left = TableScan.from_relation(ji.s, "key", "s_pay")
        right = TableScan.from_relation(ji.r, "key", "r_pay")
        join = HashJoin(left, right, "key", "key", max_output_batch=4096)
        sizes = [len(b) for b in join]
        assert sum(sizes) == 10**6
        # each probe row expands to 1000 rows; chunks hold ~4 probe rows
        assert max(sizes) <= 8192

    def test_key_validation(self):
        left = scan({"a": np.arange(3)})
        right = scan({"b": np.arange(3)})
        with pytest.raises(ConfigError):
            HashJoin(left, right, "missing", "b")
        with pytest.raises(ConfigError):
            HashJoin(left, right, "a", "missing")

    def test_empty_sides(self):
        left = scan({"key": np.empty(0, np.uint32)})
        right = scan({"key": np.arange(5, dtype=np.uint32)})
        assert len(HashJoin(left, right, "key", "key").collect()) == 0
        assert len(HashJoin(right, left, "key", "key").collect()) == 0


class TestAggregates:
    def test_group_by_count_sum(self):
        op = GroupByAggregate(
            scan({"g": np.array([1, 2, 1, 1]), "v": np.array([10, 20, 30, 40])},
                 batch_size=2),
            key="g",
            aggs={"n": ("count", None), "total": ("sum", "v")},
        )
        out = op.collect()
        rows = dict(zip(out.column("g").tolist(),
                        zip(out.column("n").tolist(),
                            out.column("total").tolist())))
        assert rows == {1: (3, 80), 2: (1, 20)}

    def test_group_by_min_max_across_batches(self):
        op = GroupByAggregate(
            scan({"g": np.array([7, 7, 7, 7]), "v": np.array([5, 1, 9, 3])},
                 batch_size=1),
            key="g",
            aggs={"lo": ("min", "v"), "hi": ("max", "v")},
        )
        out = op.collect()
        assert out.column("lo").tolist() == [1]
        assert out.column("hi").tolist() == [9]

    def test_group_by_empty_input(self):
        op = GroupByAggregate(scan({"g": np.empty(0, np.uint32)}),
                              key="g", aggs={"n": ("count", None)})
        assert len(op.collect()) == 0

    def test_group_by_validation(self):
        child = scan({"g": np.arange(3)})
        with pytest.raises(ConfigError):
            GroupByAggregate(child, key="zzz", aggs={})
        with pytest.raises(ConfigError):
            GroupByAggregate(child, key="g", aggs={"x": ("median", "g")})
        with pytest.raises(ConfigError):
            GroupByAggregate(child, key="g", aggs={"x": ("sum", "zzz")})

    def test_scalar_aggregate(self):
        op = ScalarAggregate(
            scan({"v": np.array([3, 1, 4, 1, 5])}, batch_size=2),
            aggs={"n": ("count", None), "s": ("sum", "v"),
                  "lo": ("min", "v"), "hi": ("max", "v")},
        )
        out = op.collect()
        assert out.column("n").tolist() == [5]
        assert out.column("s").tolist() == [14]
        assert out.column("lo").tolist() == [1]
        assert out.column("hi").tolist() == [5]

    def test_top_k(self):
        op = TopK(scan({"v": np.array([5, 9, 1, 7])}), by="v", k=2)
        assert op.collect().column("v").tolist() == [9, 7]
        asc = TopK(scan({"v": np.array([5, 9, 1, 7])}), by="v", k=2,
                   descending=False)
        assert asc.collect().column("v").tolist() == [1, 5]


class TestEndToEndQuery:
    def test_join_then_aggregate_equals_expected(self):
        """count(*) of the join via the query layer == analytic count."""
        ji = uniform_input(2000, 2000, n_keys=300, seed=4)
        left = TableScan.from_relation(ji.s, "key", "s_pay", batch_size=333)
        right = TableScan.from_relation(ji.r, "key", "r_pay")
        join = HashJoin(left, right, "key", "key", skew_aware=True)
        agg = ScalarAggregate(join, aggs={"n": ("count", None)})
        from tests.conftest import expected_summary
        count, _ = expected_summary(ji)
        assert agg.collect().column("n").tolist() == [count]


@given(st.lists(st.integers(0, 8), min_size=1, max_size=20),
       st.lists(st.integers(0, 8), min_size=1, max_size=20),
       st.booleans())
@settings(max_examples=40, deadline=None)
def test_hash_join_property(r_freqs, s_freqs, skew_aware):
    n = min(len(r_freqs), len(s_freqs))
    ji = input_from_frequencies(r_freqs[:n], s_freqs[:n], seed=0)
    left = TableScan.from_relation(ji.s, "key", "s_pay", batch_size=3)
    right = TableScan.from_relation(ji.r, "key", "r_pay")
    join = HashJoin(left, right, "key", "key", skew_aware=skew_aware,
                    sample_rate=0.5, max_output_batch=16)
    expected = sum(a * b for a, b in zip(r_freqs[:n], s_freqs[:n]))
    assert len(join.collect()) == expected
