# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test bench bench-paper examples docs-check all

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every table/figure at the paper's full 32M scale (~30 min).
bench-paper:
	REPRO_BENCH_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/graph_two_hop.py
	$(PYTHON) examples/skew_sweep.py
	$(PYTHON) examples/gpu_tuning.py
	$(PYTHON) examples/volcano_hub_query.py
	$(PYTHON) examples/pcie_placement.py
	$(PYTHON) examples/sales_analytics.py

all: test bench
