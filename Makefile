# Convenience targets for the repro library.
#
# Targets run from a clean checkout: PYTHONPATH=src stands in for an
# editable install (`make install`).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test lint trace-smoke chaos-smoke serve-smoke serve-chaos spill-chaos diff-served diff-spill diff-oocore bench bench-paper bench-record bench-compare bench-parallel bench-spill bench-oocore diff-backends plan-gate run-auto examples docs-check all

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest -x -q tests/

lint:
	ruff check src tests benchmarks examples

# One tiny traced run per algorithm, phase sums checked (the CI gate).
trace-smoke:
	$(PYTHON) -m repro trace --all --tuples 20000 --theta 1.0 --check

# Seeded fault sweep: every fault class into every algorithm (the CI gate).
chaos-smoke:
	$(PYTHON) -m repro chaos --seed 42 --tuples 8192 --theta 1.0

# End-to-end serving scenario over a real socket (the CI gate).
serve-smoke:
	$(PYTHON) -m repro serve --smoke --tuples 4096 --theta 1.0 --seed 42 \
		--trace-out serve-artifacts/serve-trace.jsonl

# Chaos-under-load against the daemon: concurrent fault storm, circuit
# breaking, mid-stream disconnects, post-storm health (the CI gate).
serve-chaos:
	$(PYTHON) -m repro chaos --serve --seed 7 \
		--health-out serve-artifacts/health.json

# Served-vs-direct differential across the algorithm x dataset grid.
diff-served:
	$(PYTHON) -m repro diff --served --tuples 2048

# Disk-fault ladder + SIGKILL/resume sweep for the spill plane (the CI
# gate): clean spills bit-identical, faults absorbed or typed, resumed
# runs matching uninterrupted ones exactly.
spill-chaos:
	$(PYTHON) -m repro chaos --spill --seed 42 --tuples 8192 \
		--artifact-dir spill-artifacts

# Spilled-vs-in-RAM differential (every backend, forced memory budget).
diff-spill:
	$(PYTHON) -m repro diff --spill --tuples 4096

# Out-of-core differential: every dataset streamed to an on-disk
# relation store (compressed on the skewed case) and re-joined on every
# backend with columns paging in lazily — must match in-RAM bit for bit.
diff-oocore:
	$(PYTHON) -m repro diff --oocore --tuples 4096

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every table/figure at the paper's full 32M scale (~30 min).
bench-paper:
	REPRO_BENCH_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Refresh the committed wall-time baseline in place (commit the result).
bench-record:
	$(PYTHON) -m repro bench --record --tag seed

# Gate the working tree against the committed baseline (the CI gate).
bench-compare:
	$(PYTHON) -m repro bench --compare BENCH_seed.json

# Cross-backend differential over the full algorithm x dataset grid.
diff-backends:
	$(PYTHON) -m repro diff --tuples 4096

# Parallel-vs-vector differential and bench with the morsel pool pinned
# on and actually engaged (REPRO_WORKERS defaults to the core count).
bench-parallel:
	REPRO_PARALLEL_MIN_TUPLES=0 $(PYTHON) -m repro diff --tuples 4096 \
		--backends vector,parallel
	$(PYTHON) -m repro bench --compare BENCH_seed.json

# Record/gate the spilled scale tier (commit BENCH_spill_seed.json when
# re-recording; the compare inherits the baseline's spill budget).
bench-spill:
	$(PYTHON) -m repro bench --compare BENCH_spill_seed.json

# Gate the out-of-core scale tier against its committed baseline: the
# candidate re-streams the dataset, re-joins it on every backend in
# fresh measurement children, and re-verifies bit-identity plus the
# peak-RSS-under-budget claim (re-record with
# `python -m repro bench --oocore --record --tag seed` and commit).
bench-oocore:
	$(PYTHON) -m repro bench --oocore --compare BENCH_oocore_seed.json

# Planner regret gate over the diff grid (the CI gate): the pick must
# land within 2x of the measured oracle on every dataset, and planned
# output must be bit-identical to the same configuration forced by hand.
plan-gate:
	REPRO_WORKERS=2 REPRO_PARALLEL_MIN_TUPLES=0 \
		$(PYTHON) -m repro plan --gate --tuples 20000 --seed 42 \
		--out plan-artifacts

# One planned end-to-end run: sketch, price candidates, execute argmin.
run-auto:
	$(PYTHON) -m repro run --auto --theta 1.0 --tuples 65536

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/graph_two_hop.py
	$(PYTHON) examples/skew_sweep.py
	$(PYTHON) examples/gpu_tuning.py
	$(PYTHON) examples/volcano_hub_query.py
	$(PYTHON) examples/pcie_placement.py
	$(PYTHON) examples/sales_analytics.py

all: test bench
